package heap

import (
	"fmt"
	"sync/atomic"

	"tagfree/internal/code"
)

// Mark/sweep support. The paper notes its method "will support mark/sweep
// collection as well" (§2): the same compiler-generated frame maps drive
// marking instead of copying. Tag-free objects carry no header to hold a
// mark bit or a size, so the sweep needs side metadata; real tag-free
// systems use size-segregated pages (BiBoP) whose page headers supply
// both. The simulator models that with two side arrays (object-start sizes
// and mark bits) that are collector bookkeeping, excluded from space
// accounting, exactly like the copying mode's forwarding table.
//
// Freed storage goes to exact-size free lists (the BiBoP discipline:
// a block is reused only for objects of its own size class); allocation
// bumps until the space is exhausted, then recycles.

// GCKind selects the collection discipline.
type GCKind int

// Collection disciplines.
const (
	Copying GCKind = iota
	MarkSweep
)

// NewMarkSweep creates a mark/sweep heap with the given total size in
// words. Only tag-free programs use it (the tagged baseline reproduces
// the classical copying collector).
func NewMarkSweep(repr code.Repr, totalWords int) *Heap {
	if repr != code.ReprTagFree {
		panic("NewMarkSweep: mark/sweep is implemented for the tag-free representation")
	}
	h := &Heap{
		Repr:    repr,
		kind:    MarkSweep,
		mem:     make([]code.Word, totalWords),
		semi:    totalWords,
		fromOff: 0,
		toOff:   0,
		alloc:   0,
		limit:   totalWords,
		objSize: make([]int32, totalWords),
		marks:   make([]uint32, totalWords),
		free:    map[int][]int{},
	}
	return h
}

// Kind returns the heap's collection discipline.
func (h *Heap) Kind() GCKind { return h.kind }

// msCanAlloc reports whether n object words fit without collecting.
func (h *Heap) msCanAlloc(n int) bool {
	if h.alloc+n <= h.limit {
		return true
	}
	return len(h.free[n]) > 0
}

// msAlloc allocates n words from the bump region or the free lists,
// returning a typed *OutOfMemoryError when neither can serve the request.
func (h *Heap) msAlloc(n int) (code.Word, error) {
	var base int
	switch {
	case h.alloc+n <= h.limit:
		base = h.alloc
		h.alloc += n
	case len(h.free[n]) > 0:
		l := h.free[n]
		base = l[len(l)-1]
		h.free[n] = l[:len(l)-1]
		h.Stats.FreeListHits++
	default:
		return 0, h.oomError(n)
	}
	h.objSize[base] = int32(n)
	h.spansValid = false
	h.Stats.Allocations++
	h.Stats.WordsAllocated += int64(n)
	return code.EncodePtr(h.Repr, code.HeapBase+base), nil
}

// VisitObject is the collector's single object-retention primitive: under
// copying it forwards (copying on first visit); under mark/sweep it marks.
// It returns the object's current pointer and whether its fields still
// need tracing (first visit).
func (h *Heap) VisitObject(ptr code.Word, n int) (code.Word, bool) {
	if h.young.enabled {
		if base := h.addrIndex(ptr); base < h.young.prefixWords() {
			return h.youngVisit(ptr, base, n)
		}
		if h.young.minorGC {
			// Minor collections leave the old region untouched: old→young
			// edges come from the remembered set, so an old object needs
			// no tracing here.
			return ptr, false
		}
	}
	if h.kind == MarkSweep {
		base := h.addrIndex(ptr)
		if h.objSize[base] == 0 {
			panic(fmt.Sprintf("heap: collector visited a freed block at offset %d (size %d)", base, n))
		}
		if int(h.objSize[base]) != n {
			panic(fmt.Sprintf("heap: collector visited block at %d with size %d, allocated as %d",
				base, n, h.objSize[base]))
		}
		if h.marks[base] != 0 {
			return ptr, false
		}
		h.marks[base] = 1
		h.Stats.WordsCopied += int64(n) // marked words (same column as copied)
		return ptr, true
	}
	if fwd, ok := h.Forwarded(ptr); ok {
		return fwd, false
	}
	return h.CopyObject(ptr, n), true
}

// VisitShared is the thread-safe variant of VisitObject for parallel
// marking (mark/sweep only). Marking never moves objects, so concurrent
// workers only need first-visit arbitration: an atomic compare-and-swap on
// the mark word. The winner gets fresh=true and traces the fields; losers
// see an already-marked object. Heap words are never written during
// marking, so the final heap is bit-identical regardless of scan order.
func (h *Heap) VisitShared(ptr code.Word, n int) (code.Word, bool) {
	if h.kind != MarkSweep {
		panic("VisitShared: parallel visits require a mark/sweep heap")
	}
	base := h.addrIndex(ptr)
	if h.young.enabled && base < h.young.prefixWords() {
		// Young objects move during evacuation; parallel marking cannot
		// handle them. Nursery collections run the serial path.
		panic("VisitShared: young object reached by a parallel marker")
	}
	if h.objSize[base] == 0 {
		panic(fmt.Sprintf("heap: collector visited a freed block at offset %d (size %d)", base, n))
	}
	if int(h.objSize[base]) != n {
		panic(fmt.Sprintf("heap: collector visited block at %d with size %d, allocated as %d",
			base, n, h.objSize[base]))
	}
	if !atomic.CompareAndSwapUint32(&h.marks[base], 0, 1) {
		return ptr, false
	}
	atomic.AddInt64(&h.Stats.WordsCopied, int64(n))
	return ptr, true
}

// MarkedShared reports whether the object at ptr is already marked,
// without marking it. The concurrent write barrier uses it to skip graying
// targets the cycle has already claimed — without the check a store-heavy
// mutator regrows the gray queue faster than slices drain it.
func (h *Heap) MarkedShared(ptr code.Word) bool {
	if h.kind != MarkSweep {
		panic("MarkedShared: requires a mark/sweep heap")
	}
	return atomic.LoadUint32(&h.marks[h.addrIndex(ptr)]) != 0
}

// ResetMarks clears every mark bit without sweeping. The parallel
// collector uses it to discard a partially-marked heap after a watchdog
// abort, so the serial fallback can re-mark from scratch.
func (h *Heap) ResetMarks() {
	if h.kind != MarkSweep {
		panic("ResetMarks: requires a mark/sweep heap")
	}
	for i := range h.marks {
		h.marks[i] = 0
	}
}

// FreeListWords returns the total storage parked on the mark/sweep free
// lists across all size classes. On a copying heap it is zero.
func (h *Heap) FreeListWords() int {
	total := 0
	for n, l := range h.free {
		total += n * len(l)
	}
	return total
}

// msEndGC sweeps: every allocated object that is unmarked joins its size
// class's free list; marks are cleared.
func (h *Heap) msEndGC() {
	live := int64(0)
	// Reset free lists; rebuild from the sweep (freed blocks may have been
	// reallocated and re-freed across cycles).
	h.free = map[int][]int{}
	for base := h.fromOff; base < h.alloc; {
		n := int(h.objSize[base])
		if n == 0 {
			// A gap left by an earlier sweep whose block was never
			// reallocated: recover its extent from the gap table.
			n = int(h.gapSize[base])
			h.free[n] = append(h.free[n], base)
			base += n
			continue
		}
		if h.marks[base] != 0 {
			live += int64(n)
			h.marks[base] = 0
		} else {
			h.free[n] = append(h.free[n], base)
			if h.gapSize == nil {
				h.gapSize = make([]int32, len(h.mem))
			}
			h.gapSize[base] = int32(n)
			h.objSize[base] = 0
			if h.poison {
				h.poisonRange(base, n)
			}
		}
		base += n
	}
	h.Stats.LiveAfterLastGC = live
	if live > h.Stats.PeakLive {
		h.Stats.PeakLive = live
	}
}

// SetDebugAccess enables per-access validation: reading or writing a field
// of a freed block panics with the offending offset (tests only).
func (h *Heap) SetDebugAccess(on bool) { h.debugAccess = on }

func (h *Heap) checkAccess(ptr code.Word, i int) {
	if h.kind != MarkSweep {
		return
	}
	base := h.addrIndex(ptr)
	if h.young.enabled && base < h.young.prefixWords() {
		if h.inGC {
			return // evacuation reads both halves mid-collection
		}
		s := &h.young.shards[h.youngShardOf(base)]
		if base < s.youngOff || base >= s.youngAlloc {
			panic(fmt.Sprintf("heap: field access to young offset %d outside the live nursery [%d, %d)",
				base, s.youngOff, s.youngAlloc))
		}
		return
	}
	if base < 0 || base >= len(h.objSize) {
		panic(fmt.Sprintf("heap: field access outside heap at offset %d", base))
	}
	if h.objSize[base] == 0 {
		panic(fmt.Sprintf("heap: field access to freed block at offset %d (field %d)", base, i))
	}
	if i >= int(h.objSize[base]) {
		panic(fmt.Sprintf("heap: field %d out of bounds for block at %d (size %d)", i, base, h.objSize[base]))
	}
}

// SetPoison makes the sweep overwrite freed blocks with a sentinel value.
// Any later read of freed memory then produces loudly-wrong values instead
// of silently-stale ones (tests use it to harden against collector
// precision bugs; see DESIGN.md §8 for the incident that motivated it).
func (h *Heap) SetPoison(on bool) { h.poison = on }

// PoisonWord is the sentinel written into freed blocks under SetPoison.
const PoisonWord code.Word = -0x7D0150

func (h *Heap) poisonRange(base, n int) {
	for i := 0; i < n; i++ {
		h.mem[base+i] = PoisonWord
	}
}
