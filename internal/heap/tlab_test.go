package heap

import (
	"fmt"
	"math/rand"
	"testing"

	"tagfree/internal/code"
)

func TestTLABCarveAllocRetire(t *testing.T) {
	h := New(code.ReprTagFree, 1000)
	h.EnableTLABs(16)
	tl, ok := h.CarveTLAB(2)
	if !ok {
		t.Fatal("carve failed on an empty heap")
	}
	if tl.Cap() != 16 {
		t.Fatalf("carved %d words, want the 16-word chunk", tl.Cap())
	}
	p1, ok := h.AllocTLAB(&tl, 2)
	if !ok {
		t.Fatal("AllocTLAB failed inside a fresh buffer")
	}
	p2, ok := h.AllocTLAB(&tl, 3)
	if !ok {
		t.Fatal("second AllocTLAB failed")
	}
	h.SetField(p1, 0, 41)
	h.SetField(p2, 2, 42)
	if h.Field(p1, 0) != 41 || h.Field(p2, 2) != 42 {
		t.Fatal("TLAB object field round-trip failed")
	}
	if tl.Remaining() != 11 {
		t.Fatalf("remaining = %d, want 11", tl.Remaining())
	}
	// The buffer's tail still sits at the heap's bump frontier, so retiring
	// gives the tail back instead of wasting it.
	waste, returned := h.RetireTLAB(&tl)
	if waste != 0 || returned != 11 {
		t.Fatalf("retire at the frontier: waste=%d returned=%d, want 0/11", waste, returned)
	}
	if h.Used() != 5 {
		t.Fatalf("used = %d after give-back, want 5", h.Used())
	}
	if h.Stats.TLABAllocs != 2 || h.Stats.TLABRefills != 1 {
		t.Fatalf("stats: allocs=%d refills=%d, want 2/1", h.Stats.TLABAllocs, h.Stats.TLABRefills)
	}
}

func TestTLABWasteBehindFrontier(t *testing.T) {
	h := New(code.ReprTagFree, 1000)
	h.EnableTLABs(16)
	tl, _ := h.CarveTLAB(1)
	h.AllocTLAB(&tl, 1)
	// A shared-heap allocation behind the buffer's limit pins the frontier,
	// so the tail cannot be returned and becomes waste.
	h.MustAlloc(2)
	waste, returned := h.RetireTLAB(&tl)
	if waste != 15 || returned != 0 {
		t.Fatalf("retire behind the frontier: waste=%d returned=%d, want 15/0", waste, returned)
	}
	if h.Stats.TLABWasteWords != 15 {
		t.Fatalf("TLABWasteWords = %d, want 15", h.Stats.TLABWasteWords)
	}
}

func TestTLABMarkSweepWasteIsSweptGap(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 20)
	h.EnableTLABs(16)
	tl, _ := h.CarveTLAB(3)
	h.AllocTLAB(&tl, 3)
	h.MustAlloc(2) // pin the frontier
	waste, _ := h.RetireTLAB(&tl)
	if waste != 13 {
		t.Fatalf("waste = %d, want 13", waste)
	}
	// The waste must be a swept gap on its exact-size free list, keeping
	// the object/gap tiling verifiable and the storage reusable. With the
	// bump region nearly full, a 13-word request must recycle it.
	if got := len(h.free[13]); got != 1 {
		t.Fatalf("free[13] has %d entries, want 1", got)
	}
	p, err := h.Alloc(13)
	if err != nil {
		t.Fatalf("reusing the waste gap: %v", err)
	}
	if h.Stats.FreeListHits != 1 {
		t.Fatal("13-word allocation did not recycle the waste gap")
	}
	_ = p
	// A full mark/sweep cycle over the tiling must verify clean.
	h.BeginGC()
	h.EndGC()
	if errs := h.VerifyHeap(); len(errs) > 0 {
		t.Fatalf("verify after sweep: %v", errs)
	}
}

func TestTLABNurseryCarvesYoung(t *testing.T) {
	h := New(code.ReprTagFree, 1000)
	h.EnableNursery(64, 2)
	h.EnableTLABs(16)
	tl, ok := h.CarveTLAB(2)
	if !ok {
		t.Fatal("nursery carve failed")
	}
	p, _ := h.AllocTLAB(&tl, 2)
	if !h.InYoung(p) {
		t.Fatal("nursery TLAB object was not born young")
	}
	if h.YoungUsed() != 16 {
		t.Fatalf("young used = %d, want the carved 16", h.YoungUsed())
	}
	h.RetireTLAB(&tl)
	if h.YoungUsed() != 2 {
		t.Fatalf("young used = %d after give-back, want 2", h.YoungUsed())
	}
	// Oversize objects are not TLAB-eligible on a nursery heap.
	if h.TLABEligible(65) {
		t.Fatal("object larger than a young half must not be TLAB-eligible")
	}
}

func TestTLABCarveClampsToAvailable(t *testing.T) {
	h := New(code.ReprTagFree, 20)
	h.EnableTLABs(16)
	h.MustAlloc(10)
	// Only 10 words left: the chunk clamps down but the carve succeeds.
	tl, ok := h.CarveTLAB(4)
	if !ok {
		t.Fatal("clamped carve failed with room for the object")
	}
	if tl.Cap() != 10 {
		t.Fatalf("clamped carve got %d words, want 10", tl.Cap())
	}
	h.RetireTLAB(&tl)
	// No room for even one object: the carve fails.
	h.MustAlloc(8)
	if _, ok := h.CarveTLAB(4); ok {
		t.Fatal("carve succeeded with 2 words free for a 4-word object")
	}
}

func TestTLABCollectionGuards(t *testing.T) {
	h := New(code.ReprTagFree, 100)
	h.EnableTLABs(8)
	tl, _ := h.CarveTLAB(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BeginGC with a live TLAB did not panic")
			}
		}()
		h.BeginGC()
	}()
	if err := h.Grow(200); err == nil {
		t.Fatal("Grow with a live TLAB did not fail")
	}
	h.RetireTLAB(&tl)
	h.BeginGC()
	h.EndGC()
	if errs := h.VerifyHeap(); len(errs) > 0 {
		t.Fatalf("verify with TLABs enabled: %v", errs)
	}
}

func TestTLABNeedTLABMatchesRetryPath(t *testing.T) {
	// Mark/sweep: the bump region is exhausted but the exact-size free list
	// can serve the slow-path fallback, so a TLAB retry is not blocked.
	h := NewMarkSweep(code.ReprTagFree, 10)
	h.EnableTLABs(8)
	p := h.MustAlloc(4)
	h.MustAlloc(6)
	// Free the first block via a collection that keeps only the second.
	h.BeginGC()
	h.VisitObject(code.EncodePtr(code.ReprTagFree, code.HeapBase+4), 6)
	h.EndGC()
	_ = p
	if h.NeedTLAB(4) {
		t.Fatal("NeedTLAB must see the 4-word free-list block the retry's fallback would use")
	}
	if !h.NeedTLAB(3) {
		t.Fatal("NeedTLAB must report pressure when neither a carve nor the free lists can serve")
	}
}

// tlabModel is the Go reference allocator model for the fuzz below: it
// tracks every carved interval and every object placed, asserting that no
// word is ever handed out twice and that waste accounting is exact.
type tlabModel struct {
	t *testing.T
	// owner[w] notes which task's buffer (or -1 for shared) carved word w.
	owner map[int]int
}

func (m *tlabModel) claim(task, base, size int) {
	for w := base; w < base+size; w++ {
		if prev, dup := m.owner[w]; dup {
			m.t.Fatalf("word %d double-carved: task %d after task %d", w, task, prev)
		}
		m.owner[w] = task
	}
}

func (m *tlabModel) release(base, size int) {
	for w := base; w < base+size; w++ {
		delete(m.owner, w)
	}
}

// TestTLABInterleavingFuzz drives N simulated tasks through randomized
// carve/alloc/retire interleavings against the model, across both
// disciplines and nursery on/off, multi-seed. After every buffer is
// retired the heap's exact accounting identity must hold:
// RefillWords == AllocWords + WasteWords + ReturnedWords.
func TestTLABInterleavingFuzz(t *testing.T) {
	const tasks = 4
	for _, ms := range []bool{false, true} {
		for _, nursery := range []bool{false, true} {
			for seed := int64(1); seed <= 12; seed++ {
				name := fmt.Sprintf("ms=%v/nursery=%v/seed=%d", ms, nursery, seed)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					var h *Heap
					if ms {
						h = NewMarkSweep(code.ReprTagFree, 4096)
					} else {
						h = New(code.ReprTagFree, 4096)
					}
					if nursery {
						h.EnableNursery(256, 2)
					}
					chunk := 8 + rng.Intn(56)
					h.EnableTLABs(chunk)
					model := &tlabModel{t: t, owner: map[int]int{}}
					bufs := make([]TLAB, tasks)
					var wantAllocWords int64
					for op := 0; op < 400; op++ {
						task := rng.Intn(tasks)
						switch rng.Intn(10) {
						case 0: // retire
							top, limit := bufs[task].top, bufs[task].limit
							if h.RetireTLAB(&bufs[task]); limit > top {
								// Released words may be re-carved (give-back)
								// or reused (mark/sweep gap): either way they
								// leave this task's ownership.
								model.release(top, limit-top)
							}
						default: // allocate 1..6 fields
							n := 1 + rng.Intn(6)
							if ptr, ok := h.AllocTLAB(&bufs[task], n); ok {
								if base := h.addrIndex(ptr); base < bufs[task].start || base+n > bufs[task].limit {
									t.Fatalf("task %d object [%d,%d) escapes its TLAB [%d,%d)",
										task, base, base+n, bufs[task].start, bufs[task].limit)
								}
								wantAllocWords += int64(n)
								continue
							}
							top, limit := bufs[task].top, bufs[task].limit
							if h.RetireTLAB(&bufs[task]); limit > top {
								model.release(top, limit-top)
							}
							tl, ok := h.CarveTLAB(n)
							if !ok {
								continue // heap full for this path; fine
							}
							model.claim(task, tl.start, tl.Cap())
							bufs[task] = tl
							if _, ok := h.AllocTLAB(&bufs[task], n); !ok {
								t.Fatalf("task %d: alloc failed inside a fresh carve", task)
							}
							wantAllocWords += int64(n)
						}
					}
					for i := range bufs {
						h.RetireTLAB(&bufs[i])
					}
					if h.LiveTLABs() != 0 {
						t.Fatalf("%d TLABs live after retiring all", h.LiveTLABs())
					}
					s := h.Stats
					if s.TLABAllocWords != wantAllocWords {
						t.Fatalf("TLABAllocWords = %d, model counted %d", s.TLABAllocWords, wantAllocWords)
					}
					if s.TLABRefillWords != s.TLABAllocWords+s.TLABWasteWords+s.TLABReturnedWords {
						t.Fatalf("accounting: refill %d != alloc %d + waste %d + returned %d",
							s.TLABRefillWords, s.TLABAllocWords, s.TLABWasteWords, s.TLABReturnedWords)
					}
				})
			}
		}
	}
}
