package heap

import (
	"fmt"

	"tagfree/internal/code"
)

// Generational nursery support. Goldberg's frame GC routines make stacks
// re-traceable at zero metadata cost, which is exactly the property a
// generational collector needs: stack (and global) roots are rescanned on
// every minor collection anyway, so a remembered set only has to cover
// old→young *heap* stores (Appel's "Simple Generational Garbage Collection
// and Fast Allocation" applied to the tag-free setting).
//
// Layout: the nursery is a set of shards — one per task group under
// -shards N, a single shard otherwise — each shard two young halves,
// placed at the *front* of the word array, below both disciplines'
// regions:
//
//	mem = [ sh0 half0 | sh0 half1 | sh1 half0 | sh1 half1 | ... | old ]
//
// Young offsets are therefore fixed for the life of the heap — Grow extends
// only the old region above them, so growing never moves a young object and
// the recovery ladder works unchanged mid-nursery. A pointer is young iff
// its offset is below shards*2*youngWords; its owning shard is the offset
// divided by the per-shard extent. The write barrier stays two compares.
//
// Allocation in the nursery is a pure bump in the allocation shard's
// active half (SetAllocShard routes each task to its shard; a single-shard
// heap never changes it). Every collection evacuates active young halves:
// an object that has survived promoteAfter collections is copied into the
// shared old region (the discipline's normal allocation: semispace bump
// under copying, bump-or-free-list under mark/sweep); younger survivors
// are copied to their shard's other half with their age incremented,
// Cheney-style between the two halves. If the old region cannot take a
// promotion the object simply stays young another cycle — promotion
// degrades instead of failing, so a collection can never overflow: young
// survivors always fit in the other half.
//
// A *global* collection (minor or major) evacuates every shard. A *shard*
// minor (BeginMinorGCShard) evacuates exactly one shard's active half and
// leaves every other shard's mutators and objects untouched — the
// scheduler guarantees, via its exposure tracking, that no pointer into
// the collected shard lives outside that shard's task stacks, its own
// young objects, and the remembered set, so the trace is complete without
// stopping anyone else.
//
// During a *minor* collection old objects are not traced at all:
// VisitObject returns them untouched, so the existing typed trace
// (frame plans, kernels, recursive TypeGC walks) stops at the young/old
// boundary automatically and only the remembered set (owned by the
// collector, see internal/gc) re-traces interior old→young edges. During
// a *shard* minor, other shards' young objects are likewise returned
// untouched. During a *major*, old objects take the discipline's normal
// path and every young half is evacuated by the same aging rules in the
// same trace.
type nursery struct {
	enabled bool
	// youngWords is the size of each half (same for every shard).
	youngWords int
	// shards holds the per-shard nursery state; a non-sharded heap has
	// exactly one.
	shards []nurseryShard
	// allocShard routes young allocation (and TLAB carves) to one shard's
	// active half. The tasking scheduler sets it before each task's
	// quantum; single-shard heaps leave it 0.
	allocShard int
	// promoteAfter is the survival count at which an object is tenured.
	promoteAfter uint8
	// minorGC is true while the in-progress collection is a minor one.
	minorGC bool
	// minorShard is the shard being collected by an in-progress shard
	// minor, or -1 when the collection (minor or major) spans all shards.
	minorShard int
	// tenureAll promotes every survivor regardless of age. The recovery
	// ladder sets it for its escalation collections: without it, survivors
	// below promoteAfter would stay young through any number of full
	// collections and grows (Grow extends only the old region), so a
	// young-sized Need could stay unsatisfiable forever.
	tenureAll bool
}

// nurseryShard is one shard's two-half young generation. All offsets are
// absolute mem indexes.
type nurseryShard struct {
	// base is the offset of the shard's half 0; half 1 starts at
	// base+youngWords.
	base int
	// youngOff is the base offset of the active half (base or
	// base+youngWords).
	youngOff int
	// youngAlloc is the bump pointer in the active half.
	youngAlloc int
	// youngEvac is the bump pointer in the inactive half during a
	// collection (survivor destination).
	youngEvac int
	// youngFwd forwards evacuated objects within one collection: indexed
	// by offset within the from-half, -1 = not yet visited. Reset after
	// every collection that evacuated this shard (side bookkeeping, like
	// the copying forward table).
	youngFwd []int
	// ages[i] holds per-object survival counts for half i, indexed by the
	// object's base offset within that half.
	ages [2][]uint8
}

// activeIdx returns the shard's active half index (0 or 1).
func (s *nurseryShard) activeIdx() int {
	if s.youngOff == s.base {
		return 0
	}
	return 1
}

// armEvac points the shard's evacuation bump at its inactive half.
func (s *nurseryShard) armEvac(youngWords int) {
	if s.youngOff == s.base {
		s.youngEvac = s.base + youngWords
	} else {
		s.youngEvac = s.base
	}
}

// flip makes the inactive half (holding this collection's survivors)
// active and resets the forwarding table for the next cycle.
func (s *nurseryShard) flip(youngWords int) {
	if s.youngOff == s.base {
		s.youngOff = s.base + youngWords
	} else {
		s.youngOff = s.base
	}
	s.youngAlloc = s.youngEvac
	for i := range s.youngFwd {
		s.youngFwd[i] = -1
	}
}

// prefixWords is the young prefix extent: every offset below it is young,
// everything at or above it is the old region. Zero without a nursery.
func (n *nursery) prefixWords() int {
	if !n.enabled {
		return 0
	}
	return len(n.shards) * 2 * n.youngWords
}

// EnableNursery re-lays the heap out with a generational nursery of
// youngWords words per half in front of the old region(s), promoting
// survivors to the old space after promoteAfter collections. It must be
// called before the first allocation (the re-layout moves the old region),
// and only on a tag-free heap: young objects are headerless and evacuation
// is type-directed, exactly like the rest of the collector.
func (h *Heap) EnableNursery(youngWords, promoteAfter int) {
	h.EnableNurseryShards(youngWords, promoteAfter, 1)
}

// EnableNurseryShards is EnableNursery with the young prefix partitioned
// into shards independent two-half nurseries (see the package comment on
// sharding). Shard 0 is the initial allocation shard.
func (h *Heap) EnableNurseryShards(youngWords, promoteAfter, shards int) {
	if h.Repr != code.ReprTagFree {
		panic("EnableNursery: the nursery requires the tag-free representation")
	}
	if h.inGC || h.Stats.Allocations > 0 {
		panic("EnableNursery: must be configured before the first allocation")
	}
	if youngWords <= 0 {
		panic("EnableNursery: youngWords must be positive")
	}
	if shards < 1 {
		panic("EnableNursery: shard count must be at least 1")
	}
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	if promoteAfter > 250 {
		promoteAfter = 250
	}
	n := &h.young
	n.enabled = true
	n.youngWords = youngWords
	n.allocShard = 0
	n.minorShard = -1
	n.promoteAfter = uint8(promoteAfter)
	n.shards = make([]nurseryShard, shards)
	for i := range n.shards {
		s := &n.shards[i]
		s.base = i * 2 * youngWords
		s.youngOff = s.base
		s.youngAlloc = s.base
		s.youngFwd = make([]int, youngWords)
		for j := range s.youngFwd {
			s.youngFwd[j] = -1
		}
		s.ages[0] = make([]uint8, youngWords)
		s.ages[1] = make([]uint8, youngWords)
	}

	shift := n.prefixWords()
	if h.kind == MarkSweep {
		h.mem = make([]code.Word, shift+h.semi)
		h.fromOff, h.toOff = shift, shift
		h.alloc = shift
		h.limit = shift + h.semi
		h.objSize = make([]int32, len(h.mem))
		h.marks = make([]uint32, len(h.mem))
		h.gapSize = nil
		return
	}
	h.mem = make([]code.Word, shift+2*h.semi)
	h.fromOff = shift
	h.toOff = shift + h.semi
	h.alloc = h.fromOff
	h.limit = h.fromOff + h.semi
	// forward stays indexed by (base - fromOff); its length is unchanged.
}

// NurseryEnabled reports whether the heap has a generational nursery.
func (h *Heap) NurseryEnabled() bool { return h.young.enabled }

// YoungWords returns the nursery half size (0 without a nursery).
func (h *Heap) YoungWords() int { return h.young.youngWords }

// YoungTotalWords returns the heap's total young allocation capacity: one
// active half per shard. This is the figure occupancy-based policies
// (serve's load shedding) must use — YoungWords alone under-counts a
// sharded heap.
func (h *Heap) YoungTotalWords() int {
	if !h.young.enabled {
		return 0
	}
	return len(h.young.shards) * h.young.youngWords
}

// YoungUsed returns the words allocated across every shard's active half.
func (h *Heap) YoungUsed() int {
	used := 0
	for i := range h.young.shards {
		s := &h.young.shards[i]
		used += s.youngAlloc - s.youngOff
	}
	return used
}

// YoungUsedShard returns the words allocated in one shard's active half.
func (h *Heap) YoungUsedShard(shard int) int {
	s := &h.young.shards[shard]
	return s.youngAlloc - s.youngOff
}

// NurseryShards returns the number of nursery shards (0 without a
// nursery, 1 for the unsharded layout).
func (h *Heap) NurseryShards() int { return len(h.young.shards) }

// AllocShard returns the shard young allocation currently routes to.
func (h *Heap) AllocShard() int { return h.young.allocShard }

// SetAllocShard routes subsequent young allocation (bump fast path and
// TLAB carves) to the given shard's active half. The tasking scheduler
// calls it before each task's quantum.
func (h *Heap) SetAllocShard(shard int) {
	if shard < 0 || shard >= len(h.young.shards) {
		panic(fmt.Sprintf("SetAllocShard: shard %d out of range (%d shards)", shard, len(h.young.shards)))
	}
	h.young.allocShard = shard
}

// PromoteAfter returns the survival count at which objects are tenured.
func (h *Heap) PromoteAfter() int { return int(h.young.promoteAfter) }

// MinorActive reports whether a minor collection is in progress.
func (h *Heap) MinorActive() bool { return h.inGC && h.young.minorGC }

// MinorShard returns the shard an in-progress shard minor is collecting,
// or -1 when the current collection spans all shards (or none is active).
func (h *Heap) MinorShard() int {
	if !h.inGC {
		return -1
	}
	return h.young.minorShard
}

// SetTenureAll switches the nursery into (or out of) tenure-everything
// mode for subsequent collections. See nursery.tenureAll.
func (h *Heap) SetTenureAll(on bool) { h.young.tenureAll = on }

// InYoung reports whether w is a pointer into the nursery. Callers must
// already know w is a pointer-shaped value (tag-free integers can alias
// heap addresses); the barrier guarantees that via static store types.
func (h *Heap) InYoung(w code.Word) bool {
	if !h.young.enabled {
		return false
	}
	off := int(w) - code.HeapBase
	return off >= 0 && off < h.young.prefixWords()
}

// InOld reports whether w is a pointer into the old region.
func (h *Heap) InOld(w code.Word) bool {
	off := int(w) - code.HeapBase
	return off >= h.young.prefixWords() && off < len(h.mem)
}

// youngShardOf returns the shard owning a young mem offset.
func (h *Heap) youngShardOf(base int) int {
	return base / (2 * h.young.youngWords)
}

// YoungShardOf returns the shard owning young pointer w. Callers must
// have established InYoung(w) first.
func (h *Heap) YoungShardOf(w code.Word) int {
	return h.youngShardOf(int(w) - code.HeapBase)
}

// InYoungShard reports whether w is a young pointer owned by the given
// shard.
func (h *Heap) InYoungShard(w code.Word, shard int) bool {
	return h.InYoung(w) && h.YoungShardOf(w) == shard
}

// youngAllocFast bump-allocates total words in the allocation shard's
// active half, or reports false when that half cannot take the request.
func (h *Heap) youngAllocFast(total int) (code.Word, bool) {
	n := &h.young
	s := &n.shards[n.allocShard]
	if s.youngAlloc+total > s.youngOff+n.youngWords {
		return 0, false
	}
	base := s.youngAlloc
	s.youngAlloc += total
	s.ages[s.activeIdx()][base-s.youngOff] = 0
	h.spansValid = false
	h.Stats.Allocations++
	h.Stats.WordsAllocated += int64(total)
	return code.EncodePtr(h.Repr, code.HeapBase+base), true
}

// beginYoungGC arms survivor evacuation into every shard's inactive half
// (global collections evacuate all shards).
func (h *Heap) beginYoungGC(minor bool) {
	n := &h.young
	n.minorGC = minor
	n.minorShard = -1
	for i := range n.shards {
		n.shards[i].armEvac(n.youngWords)
	}
}

// endYoungGC flips the evacuated shards' halves: survivors become each new
// active half's prefix. A shard minor flips only its own shard.
func (h *Heap) endYoungGC() {
	n := &h.young
	for i := range n.shards {
		if n.minorShard >= 0 && i != n.minorShard {
			continue
		}
		n.shards[i].flip(n.youngWords)
	}
	n.minorGC = false
	n.minorShard = -1
}

// BeginMinorGC starts a global minor collection: every shard's nursery is
// collected; old objects are left untouched by VisitObject and the
// remembered set supplies the interior old→young edges.
func (h *Heap) BeginMinorGC() {
	if !h.young.enabled {
		panic("BeginMinorGC: no nursery configured")
	}
	if h.inGC {
		panic("BeginMinorGC: collection already in progress")
	}
	if h.tlabs.live > 0 {
		panic("BeginMinorGC: live TLABs must be retired before a collection")
	}
	h.inGC = true
	h.Stats.Collections++
	h.Stats.MinorCollections++
	h.spans = h.spans[:0]
	h.spansValid = false
	h.beginYoungGC(true)
}

// BeginMinorGCShard starts a minor collection of one shard: only that
// shard's active half is evacuated; every other shard — objects, bump
// pointers, live old-region TLABs — is untouched, so its mutators need not
// stop. The caller (the tasking scheduler) must guarantee the shard is
// unexposed: no pointer into it lives outside its own tasks' stacks, its
// own young objects, and the remembered set. Young TLABs of the collected
// shard must be retired; other shards' TLABs may stay live (old-region
// promotion bumps past every outstanding carve, and a shard minor never
// sweeps).
func (h *Heap) BeginMinorGCShard(shard int) {
	if !h.young.enabled {
		panic("BeginMinorGCShard: no nursery configured")
	}
	if shard < 0 || shard >= len(h.young.shards) {
		panic(fmt.Sprintf("BeginMinorGCShard: shard %d out of range (%d shards)", shard, len(h.young.shards)))
	}
	if h.inGC {
		panic("BeginMinorGCShard: collection already in progress")
	}
	if h.tlabs.liveYoungIn(shard) > 0 {
		panic("BeginMinorGCShard: the collected shard's young TLABs must be retired first")
	}
	h.inGC = true
	h.Stats.Collections++
	h.Stats.MinorCollections++
	h.spans = h.spans[:0]
	h.spansValid = false
	n := &h.young
	n.minorGC = true
	n.minorShard = shard
	n.shards[shard].armEvac(n.youngWords)
}

// EndMinorGC completes a minor collection (global or single-shard). The
// old region is untouched; only the evacuated shards' halves flip.
func (h *Heap) EndMinorGC() {
	if !h.inGC || !h.young.minorGC {
		panic("EndMinorGC: no minor collection in progress")
	}
	h.inGC = false
	h.endYoungGC()
}

// youngVisit is VisitObject for nursery pointers, during both minor and
// major collections: forward if already evacuated, else promote by age
// (falling back to young survival when the old region is full) or copy to
// the shard's inactive half. During a shard minor, other shards' objects
// are returned untouched, exactly like old objects — the exposure
// invariant guarantees nothing reachable only through them belongs to the
// collected shard.
func (h *Heap) youngVisit(ptr code.Word, base, n int) (code.Word, bool) {
	y := &h.young
	if !h.inGC {
		panic("heap: young object visited outside a collection")
	}
	t := h.youngShardOf(base)
	if y.minorShard >= 0 && t != y.minorShard {
		return ptr, false
	}
	s := &y.shards[t]
	// A pointer into the to-half's filled prefix is an already-evacuated
	// object: remembered-set entries recorded during this collection (a
	// promoted parent whose child was just copied) hold post-evacuation
	// addresses, and re-tracing them must be the identity, exactly like a
	// forwarding hit.
	if toBase := s.base + (1-s.activeIdx())*y.youngWords; base >= toBase && base+n <= s.youngEvac {
		return ptr, false
	}
	if base < s.youngOff || base+n > s.youngAlloc {
		panic(fmt.Sprintf("heap: collector visited young offset %d (size %d) outside shard %d's live nursery [%d, %d)",
			base, n, t, s.youngOff, s.youngAlloc))
	}
	rel := base - s.youngOff
	if fwd := s.youngFwd[rel]; fwd >= 0 {
		return code.EncodePtr(h.Repr, code.HeapBase+fwd), false
	}
	fromIdx := s.activeIdx()
	age := s.ages[fromIdx][rel]
	if age < 250 {
		age++
	}
	if age >= y.promoteAfter || y.tenureAll {
		if nb, ok := h.promoteDest(n); ok {
			copy(h.mem[nb:nb+n], h.mem[base:base+n])
			s.youngFwd[rel] = nb
			h.Stats.WordsCopied += int64(n)
			h.Stats.PromotedWords += int64(n)
			return code.EncodePtr(h.Repr, code.HeapBase+nb), true
		}
		// No old-space room: survive in young another cycle instead of
		// failing — the ladder's next full collection or grow makes room.
	}
	nb := s.youngEvac
	s.youngEvac += n
	copy(h.mem[nb:nb+n], h.mem[base:base+n])
	s.ages[1-fromIdx][nb-(s.base+(1-fromIdx)*y.youngWords)] = age
	s.youngFwd[rel] = nb
	h.Stats.WordsCopied += int64(n)
	return code.EncodePtr(h.Repr, code.HeapBase+nb), true
}

// promoteDest allocates n words in the old region for a tenured object, by
// the discipline's own rules. During a copying major the destination is
// to-space (alloc already points there); during a minor it is the mutator's
// from-space bump region. Mark/sweep tries the bump region then the exact
// free lists, and marks the block when a sweep will follow (majors only).
// Reports false when the old region cannot take the object.
func (h *Heap) promoteDest(n int) (int, bool) {
	var base int
	if h.kind == MarkSweep {
		switch {
		case h.alloc+n <= h.limit:
			base = h.alloc
			h.alloc += n
		case len(h.free[n]) > 0:
			l := h.free[n]
			base = l[len(l)-1]
			h.free[n] = l[:len(l)-1]
			h.Stats.FreeListHits++
		default:
			return 0, false
		}
		h.objSize[base] = int32(n)
		if !h.young.minorGC {
			h.marks[base] = 1 // keep the promoted block through the sweep
		}
		return base, true
	}
	// During a copying major, oldReserve words of to-space are owed to old
	// objects not yet copied; promotions may only take the slack beyond it
	// (and degrade to young survival otherwise — see youngVisit).
	if h.alloc+n > h.limit-h.oldReserve {
		return 0, false
	}
	base = h.alloc
	h.alloc += n
	if h.verify && !h.young.minorGC {
		h.spans = append(h.spans, span{base: base, size: n})
	}
	return base, true
}

// verifyNursery checks the nursery's post-collection invariants for every
// shard: the bump pointer inside the active half and the forwarding table
// fully reset.
func (h *Heap) verifyNursery() []error {
	y := &h.young
	var errs []error
	for i := range y.shards {
		s := &y.shards[i]
		if s.youngAlloc < s.youngOff || s.youngAlloc > s.youngOff+y.youngWords {
			errs = append(errs, fmt.Errorf("heap verify: shard %d nursery bump %d outside active half [%d, %d]",
				i, s.youngAlloc, s.youngOff, s.youngOff+y.youngWords))
		}
		for j, f := range s.youngFwd {
			if f >= 0 {
				errs = append(errs, fmt.Errorf("heap verify: shard %d nursery forwarding entry %d not reset (still %d) after collection", i, j, f))
				break
			}
		}
	}
	return errs
}
