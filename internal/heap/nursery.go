package heap

import (
	"fmt"

	"tagfree/internal/code"
)

// Generational nursery support. Goldberg's frame GC routines make stacks
// re-traceable at zero metadata cost, which is exactly the property a
// generational collector needs: stack (and global) roots are rescanned on
// every minor collection anyway, so a remembered set only has to cover
// old→young *heap* stores (Appel's "Simple Generational Garbage Collection
// and Fast Allocation" applied to the tag-free setting).
//
// Layout: the nursery is two young halves placed at the *front* of the word
// array, below both disciplines' regions:
//
//	mem = [ young half 0 | young half 1 | old region(s) ... ]
//
// Young offsets are therefore fixed for the life of the heap — Grow extends
// only the old region above them, so growing never moves a young object and
// the recovery ladder works unchanged mid-nursery. A pointer is young iff
// its offset is below 2*youngWords; the write barrier is two compares.
//
// Allocation in the nursery is a pure bump. Every collection (minor or
// major) evacuates the active young half: an object that has survived
// promoteAfter collections is copied into the old region (the discipline's
// normal allocation: semispace bump under copying, bump-or-free-list under
// mark/sweep); younger survivors are copied to the other young half with
// their age incremented, Cheney-style between the two halves. If the old
// region cannot take a promotion the object simply stays young another
// cycle — promotion degrades instead of failing, so a collection can never
// overflow: young survivors always fit in the other half.
//
// During a *minor* collection old objects are not traced at all:
// VisitObject returns them untouched, so the existing typed trace
// (frame plans, kernels, recursive TypeGC walks) stops at the young/old
// boundary automatically and only the remembered set (owned by the
// collector, see internal/gc) re-traces interior old→young edges.
// During a *major*, old objects take the discipline's normal path and the
// young half is evacuated by the same aging rules in the same trace.
type nursery struct {
	enabled bool
	// youngWords is the size of each half.
	youngWords int
	// youngOff is the base offset of the active half (0 or youngWords).
	youngOff int
	// youngAlloc is the bump pointer in the active half (absolute offset).
	youngAlloc int
	// youngEvac is the bump pointer in the inactive half during a
	// collection (survivor destination).
	youngEvac int
	// youngFwd forwards evacuated objects within one collection: indexed
	// by offset within the from-half, -1 = not yet visited. Reset after
	// every collection (side bookkeeping, like the copying forward table).
	youngFwd []int
	// ages[i] holds per-object survival counts for half i, indexed by the
	// object's base offset within that half.
	ages [2][]uint8
	// promoteAfter is the survival count at which an object is tenured.
	promoteAfter uint8
	// minorGC is true while the in-progress collection is a minor one.
	minorGC bool
	// tenureAll promotes every survivor regardless of age. The recovery
	// ladder sets it for its escalation collections: without it, survivors
	// below promoteAfter would stay young through any number of full
	// collections and grows (Grow extends only the old region), so a
	// young-sized Need could stay unsatisfiable forever.
	tenureAll bool
}

// EnableNursery re-lays the heap out with a generational nursery of
// youngWords words per half in front of the old region(s), promoting
// survivors to the old space after promoteAfter collections. It must be
// called before the first allocation (the re-layout moves the old region),
// and only on a tag-free heap: young objects are headerless and evacuation
// is type-directed, exactly like the rest of the collector.
func (h *Heap) EnableNursery(youngWords, promoteAfter int) {
	if h.Repr != code.ReprTagFree {
		panic("EnableNursery: the nursery requires the tag-free representation")
	}
	if h.inGC || h.Stats.Allocations > 0 {
		panic("EnableNursery: must be configured before the first allocation")
	}
	if youngWords <= 0 {
		panic("EnableNursery: youngWords must be positive")
	}
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	if promoteAfter > 250 {
		promoteAfter = 250
	}
	n := &h.young
	n.enabled = true
	n.youngWords = youngWords
	n.youngOff = 0
	n.youngAlloc = 0
	n.promoteAfter = uint8(promoteAfter)
	n.youngFwd = make([]int, youngWords)
	for i := range n.youngFwd {
		n.youngFwd[i] = -1
	}
	n.ages[0] = make([]uint8, youngWords)
	n.ages[1] = make([]uint8, youngWords)

	shift := 2 * youngWords
	if h.kind == MarkSweep {
		h.mem = make([]code.Word, shift+h.semi)
		h.fromOff, h.toOff = shift, shift
		h.alloc = shift
		h.limit = shift + h.semi
		h.objSize = make([]int32, len(h.mem))
		h.marks = make([]uint32, len(h.mem))
		h.gapSize = nil
		return
	}
	h.mem = make([]code.Word, shift+2*h.semi)
	h.fromOff = shift
	h.toOff = shift + h.semi
	h.alloc = h.fromOff
	h.limit = h.fromOff + h.semi
	// forward stays indexed by (base - fromOff); its length is unchanged.
}

// NurseryEnabled reports whether the heap has a generational nursery.
func (h *Heap) NurseryEnabled() bool { return h.young.enabled }

// YoungWords returns the nursery half size (0 without a nursery).
func (h *Heap) YoungWords() int { return h.young.youngWords }

// YoungUsed returns the words allocated in the active young half.
func (h *Heap) YoungUsed() int { return h.young.youngAlloc - h.young.youngOff }

// PromoteAfter returns the survival count at which objects are tenured.
func (h *Heap) PromoteAfter() int { return int(h.young.promoteAfter) }

// MinorActive reports whether a minor collection is in progress.
func (h *Heap) MinorActive() bool { return h.inGC && h.young.minorGC }

// SetTenureAll switches the nursery into (or out of) tenure-everything
// mode for subsequent collections. See nursery.tenureAll.
func (h *Heap) SetTenureAll(on bool) { h.young.tenureAll = on }

// InYoung reports whether w is a pointer into the nursery. Callers must
// already know w is a pointer-shaped value (tag-free integers can alias
// heap addresses); the barrier guarantees that via static store types.
func (h *Heap) InYoung(w code.Word) bool {
	if !h.young.enabled {
		return false
	}
	off := int(w) - code.HeapBase
	return off >= 0 && off < 2*h.young.youngWords
}

// InOld reports whether w is a pointer into the old region.
func (h *Heap) InOld(w code.Word) bool {
	off := int(w) - code.HeapBase
	return off >= 2*h.young.youngWords && off < len(h.mem)
}

// youngActiveIdx returns the active half's index (0 or 1).
func (h *Heap) youngActiveIdx() int {
	if h.young.youngOff == 0 {
		return 0
	}
	return 1
}

// youngAllocFast bump-allocates total words in the active young half,
// or reports false when the half cannot take the request.
func (h *Heap) youngAllocFast(total int) (code.Word, bool) {
	n := &h.young
	if n.youngAlloc+total > n.youngOff+n.youngWords {
		return 0, false
	}
	base := n.youngAlloc
	n.youngAlloc += total
	n.ages[h.youngActiveIdx()][base-n.youngOff] = 0
	h.spansValid = false
	h.Stats.Allocations++
	h.Stats.WordsAllocated += int64(total)
	return code.EncodePtr(h.Repr, code.HeapBase+base), true
}

// beginYoungGC arms survivor evacuation into the inactive half.
func (h *Heap) beginYoungGC(minor bool) {
	n := &h.young
	n.minorGC = minor
	if n.youngOff == 0 {
		n.youngEvac = n.youngWords
	} else {
		n.youngEvac = 0
	}
}

// endYoungGC flips the halves: survivors become the new active half's
// prefix and the forwarding table is reset for the next cycle.
func (h *Heap) endYoungGC() {
	n := &h.young
	if n.youngOff == 0 {
		n.youngOff = n.youngWords
	} else {
		n.youngOff = 0
	}
	n.youngAlloc = n.youngEvac
	n.minorGC = false
	for i := range n.youngFwd {
		n.youngFwd[i] = -1
	}
}

// BeginMinorGC starts a minor collection: only the nursery is collected;
// old objects are left untouched by VisitObject and the remembered set
// supplies the interior old→young edges.
func (h *Heap) BeginMinorGC() {
	if !h.young.enabled {
		panic("BeginMinorGC: no nursery configured")
	}
	if h.inGC {
		panic("BeginMinorGC: collection already in progress")
	}
	if h.tlabs.live > 0 {
		panic("BeginMinorGC: live TLABs must be retired before a collection")
	}
	h.inGC = true
	h.Stats.Collections++
	h.Stats.MinorCollections++
	h.spans = h.spans[:0]
	h.spansValid = false
	h.beginYoungGC(true)
}

// EndMinorGC completes a minor collection. The old region is untouched;
// only the young halves flip.
func (h *Heap) EndMinorGC() {
	if !h.inGC || !h.young.minorGC {
		panic("EndMinorGC: no minor collection in progress")
	}
	h.inGC = false
	h.endYoungGC()
}

// youngVisit is VisitObject for nursery pointers, during both minor and
// major collections: forward if already evacuated, else promote by age
// (falling back to young survival when the old region is full) or copy to
// the inactive half.
func (h *Heap) youngVisit(ptr code.Word, base, n int) (code.Word, bool) {
	y := &h.young
	if !h.inGC {
		panic("heap: young object visited outside a collection")
	}
	// A pointer into the to-half's filled prefix is an already-evacuated
	// object: remembered-set entries recorded during this collection (a
	// promoted parent whose child was just copied) hold post-evacuation
	// addresses, and re-tracing them must be the identity, exactly like a
	// forwarding hit.
	if toBase := (1 - h.youngActiveIdx()) * y.youngWords; base >= toBase && base+n <= y.youngEvac {
		return ptr, false
	}
	if base < y.youngOff || base+n > y.youngAlloc {
		panic(fmt.Sprintf("heap: collector visited young offset %d (size %d) outside the live nursery [%d, %d)",
			base, n, y.youngOff, y.youngAlloc))
	}
	rel := base - y.youngOff
	if fwd := y.youngFwd[rel]; fwd >= 0 {
		return code.EncodePtr(h.Repr, code.HeapBase+fwd), false
	}
	fromIdx := h.youngActiveIdx()
	age := y.ages[fromIdx][rel]
	if age < 250 {
		age++
	}
	if age >= y.promoteAfter || y.tenureAll {
		if nb, ok := h.promoteDest(n); ok {
			copy(h.mem[nb:nb+n], h.mem[base:base+n])
			y.youngFwd[rel] = nb
			h.Stats.WordsCopied += int64(n)
			h.Stats.PromotedWords += int64(n)
			return code.EncodePtr(h.Repr, code.HeapBase+nb), true
		}
		// No old-space room: survive in young another cycle instead of
		// failing — the ladder's next full collection or grow makes room.
	}
	nb := y.youngEvac
	y.youngEvac += n
	copy(h.mem[nb:nb+n], h.mem[base:base+n])
	y.ages[1-fromIdx][nb-(1-fromIdx)*y.youngWords] = age
	y.youngFwd[rel] = nb
	h.Stats.WordsCopied += int64(n)
	return code.EncodePtr(h.Repr, code.HeapBase+nb), true
}

// promoteDest allocates n words in the old region for a tenured object, by
// the discipline's own rules. During a copying major the destination is
// to-space (alloc already points there); during a minor it is the mutator's
// from-space bump region. Mark/sweep tries the bump region then the exact
// free lists, and marks the block when a sweep will follow (majors only).
// Reports false when the old region cannot take the object.
func (h *Heap) promoteDest(n int) (int, bool) {
	var base int
	if h.kind == MarkSweep {
		switch {
		case h.alloc+n <= h.limit:
			base = h.alloc
			h.alloc += n
		case len(h.free[n]) > 0:
			l := h.free[n]
			base = l[len(l)-1]
			h.free[n] = l[:len(l)-1]
			h.Stats.FreeListHits++
		default:
			return 0, false
		}
		h.objSize[base] = int32(n)
		if !h.young.minorGC {
			h.marks[base] = 1 // keep the promoted block through the sweep
		}
		return base, true
	}
	// During a copying major, oldReserve words of to-space are owed to old
	// objects not yet copied; promotions may only take the slack beyond it
	// (and degrade to young survival otherwise — see youngVisit).
	if h.alloc+n > h.limit-h.oldReserve {
		return 0, false
	}
	base = h.alloc
	h.alloc += n
	if h.verify && !h.young.minorGC {
		h.spans = append(h.spans, span{base: base, size: n})
	}
	return base, true
}

// verifyNursery checks the nursery's post-collection invariants: the bump
// pointer inside the active half and the forwarding table fully reset.
func (h *Heap) verifyNursery() []error {
	y := &h.young
	var errs []error
	if y.youngAlloc < y.youngOff || y.youngAlloc > y.youngOff+y.youngWords {
		errs = append(errs, fmt.Errorf("heap verify: nursery bump %d outside active half [%d, %d]",
			y.youngAlloc, y.youngOff, y.youngOff+y.youngWords))
	}
	for i, f := range y.youngFwd {
		if f >= 0 {
			errs = append(errs, fmt.Errorf("heap verify: nursery forwarding entry %d not reset (still %d) after collection", i, f))
			break
		}
	}
	return errs
}
