package heap

import (
	"fmt"

	"tagfree/internal/code"
)

// Task-local allocation buffers (TLABs). The tasking runtime shares one
// heap among many tasks, which serializes every allocation through the
// shared bump pointer — in a real runtime, through the shared-heap lock.
// A TLAB removes that: each task carves a private chunk from the heap in
// one shared acquisition and then bump-allocates inside it with a pure
// bounds-check-and-bump, touching the shared heap again only to refill.
//
// Where chunks come from mirrors the allocation path they replace:
//
//   - Nursery enabled: chunks are carved from the active young half's bump
//     region, so TLAB objects are born young, keep their per-object age
//     slot, and are evacuated by the ordinary minor/major rules. Objects
//     too large for the nursery bypass TLABs exactly as they bypass the
//     young fast path (pre-tenured via Alloc).
//   - Copying, no nursery: chunks come from the from-space bump region.
//   - Mark/sweep: chunks come from the bump region only — free-list blocks
//     are exact-size (BiBoP) and cannot host a multi-object buffer. The
//     free lists still serve the slow path when carving fails.
//
// Retirement keeps the heap's tiling invariants intact. A buffer retired
// with its tail still at the region's bump pointer gives the tail back
// (TLABReturnedWords); otherwise the tail is dead: accounted as
// TLABWasteWords and, under mark/sweep, recorded as a swept gap on its
// exact-size free list so the sweep and the verifier still see a perfect
// object/gap tiling. Copying and nursery waste needs no bookkeeping — the
// words are simply never traced and die at the next flip.
//
// Every collection requires all TLABs retired first (BeginGC/BeginMinorGC
// panic otherwise): a copying flip or a nursery evacuation would otherwise
// leave buffers bumping into dead space.

// TLAB is one task's private bump region. The zero value is an empty,
// never-carved buffer: AllocTLAB fails on it and RetireTLAB ignores it.
type TLAB struct {
	// start, top and limit are absolute mem indexes: objects are bumped at
	// top within [start, limit); start is kept for capacity accounting.
	start, top, limit int
	// young marks a buffer carved from the nursery's active half; shard is
	// the nursery shard it was carved from (the allocation shard at carve
	// time; 0 on an unsharded heap, meaningless when !young).
	young bool
	shard int
	// active marks a carved, not-yet-retired buffer.
	active bool
}

// Cap returns the buffer's carved capacity in words.
func (t *TLAB) Cap() int { return t.limit - t.start }

// Remaining returns the unused words left in the buffer.
func (t *TLAB) Remaining() int { return t.limit - t.top }

// Active reports whether the buffer is carved and not yet retired.
func (t *TLAB) Active() bool { return t.active }

// tlabState is the heap-side TLAB configuration and bookkeeping.
type tlabState struct {
	enabled bool
	// chunk is the default carve size in words (-tlab N).
	chunk int
	// live counts carved, un-retired buffers; collections and grows refuse
	// to run while any exist. liveYoung counts the young buffers per
	// nursery shard: a shard minor only requires its own shard's young
	// buffers retired, so other shards' mutators keep their buffers live.
	live      int
	liveYoung []int
}

// liveYoungIn returns the live young-buffer count for one nursery shard.
func (t *tlabState) liveYoungIn(shard int) int {
	if shard >= len(t.liveYoung) {
		return 0
	}
	return t.liveYoung[shard]
}

// noteYoungCarve adjusts the per-shard young live count by delta.
func (t *tlabState) noteYoungCarve(shard, delta int) {
	for shard >= len(t.liveYoung) {
		t.liveYoung = append(t.liveYoung, 0)
	}
	t.liveYoung[shard] += delta
}

// EnableTLABs switches the heap into TLAB mode with the given default
// chunk size in words. It only arms the carve API — layout is untouched —
// so it may be called at any point outside a collection.
func (h *Heap) EnableTLABs(chunkWords int) {
	if chunkWords <= 0 {
		panic("EnableTLABs: chunk size must be positive")
	}
	if h.inGC {
		panic("EnableTLABs: collection in progress")
	}
	h.tlabs.enabled = true
	h.tlabs.chunk = chunkWords
}

// TLABsEnabled reports whether the heap is in TLAB mode.
func (h *Heap) TLABsEnabled() bool { return h.tlabs.enabled }

// TLABChunkWords returns the configured default carve size.
func (h *Heap) TLABChunkWords() int { return h.tlabs.chunk }

// LiveTLABs returns the number of carved, un-retired buffers.
func (h *Heap) LiveTLABs() int { return h.tlabs.live }

// TLABEligible reports whether an n-field object may be served from a
// TLAB: it must fit the configured chunk, and — with a nursery — fit a
// young half, since nursery chunks are carved young and oversize objects
// are pre-tenured exactly as on the non-TLAB path.
func (h *Heap) TLABEligible(n int) bool {
	if !h.tlabs.enabled {
		return false
	}
	total := h.objWords(n)
	if total > h.tlabs.chunk {
		return false
	}
	if h.young.enabled && total > h.young.youngWords {
		return false
	}
	return true
}

// TLABRoom reports whether the buffer can take an n-field object without
// a refill.
func (h *Heap) TLABRoom(t *TLAB, n int) bool {
	return t.active && h.objWords(n) <= t.limit-t.top
}

// CarveTLAB carves a fresh buffer able to hold at least one n-field
// object, preferring the configured chunk size but clamping to the space
// the source region actually has (so a carve fails only when the object
// itself does not fit — the property the recovery ladder's rescue check
// relies on). Reports false when the region cannot take the object; the
// caller then falls back to Alloc and, on failure, the OOM ladder.
func (h *Heap) CarveTLAB(n int) (TLAB, bool) {
	if !h.tlabs.enabled {
		panic("CarveTLAB: TLABs not enabled")
	}
	if h.inGC {
		panic("CarveTLAB: collection in progress")
	}
	if !h.TLABEligible(n) {
		return TLAB{}, false
	}
	total := h.objWords(n)
	size := h.tlabs.chunk
	var base int
	if h.young.enabled {
		y := &h.young
		s := &y.shards[y.allocShard]
		avail := s.youngOff + y.youngWords - s.youngAlloc
		if size > avail {
			size = avail
		}
		if size < total {
			return TLAB{}, false
		}
		base = s.youngAlloc
		s.youngAlloc += size
	} else {
		avail := h.limit - h.alloc
		if size > avail {
			size = avail
		}
		if size < total {
			return TLAB{}, false
		}
		base = h.alloc
		h.alloc += size
	}
	h.spansValid = false
	h.tlabs.live++
	if h.young.enabled {
		h.tlabs.noteYoungCarve(h.young.allocShard, 1)
	}
	h.Stats.SharedAllocs++
	h.Stats.TLABRefills++
	h.Stats.TLABRefillWords += int64(size)
	return TLAB{start: base, top: base, limit: base + size,
		young: h.young.enabled, shard: h.young.allocShard, active: true}, true
}

// AllocTLAB bump-allocates an n-field object inside the buffer, or
// reports false when the buffer cannot take it (empty, retired, or full —
// the caller refills via CarveTLAB). This is the allocation fast path: no
// shared-heap state is consulted beyond the side metadata the object
// itself needs (age slot in the nursery, size under mark/sweep, header in
// tagged mode).
func (h *Heap) AllocTLAB(t *TLAB, n int) (code.Word, bool) {
	total := h.objWords(n)
	if !t.active || total > t.limit-t.top {
		return 0, false
	}
	if h.inGC {
		panic("AllocTLAB: collection in progress")
	}
	base := t.top
	t.top += total
	if t.young {
		s := &h.young.shards[t.shard]
		s.ages[s.activeIdx()][base-s.youngOff] = 0
	} else if h.kind == MarkSweep {
		h.objSize[base] = int32(total)
	}
	if h.Repr == code.ReprTagged {
		h.mem[base] = code.Word(n)<<1 | 1 // odd header: field count
	}
	h.spansValid = false
	h.Stats.Allocations++
	h.Stats.WordsAllocated += int64(total)
	h.Stats.TLABAllocs++
	h.Stats.TLABAllocWords += int64(total)
	return code.EncodePtr(h.Repr, code.HeapBase+base), true
}

// RetireTLAB returns a buffer to the heap, leaving a tiling the sweep,
// the verifier and the next collection all accept. The unused tail is
// given back to the region's bump pointer when the buffer still sits at
// its frontier (waste 0), or accounted as waste: a swept gap on the
// exact-size free list under mark/sweep, dead words under copying and in
// the nursery. Retiring an empty or already-retired buffer is a no-op.
// Returns the (waste, returned) word counts for per-task accounting.
func (h *Heap) RetireTLAB(t *TLAB) (waste, returned int) {
	if !t.active {
		return 0, 0
	}
	if h.inGC {
		panic("RetireTLAB: collection in progress")
	}
	unused := t.limit - t.top
	switch {
	case unused == 0:
		// Fully used: nothing to give back or account.
	case t.young && h.young.shards[t.shard].youngAlloc == t.limit:
		h.young.shards[t.shard].youngAlloc = t.top
		returned = unused
	case !t.young && h.alloc == t.limit:
		h.alloc = t.top
		returned = unused
	default:
		waste = unused
		if !t.young && h.kind == MarkSweep {
			if h.gapSize == nil {
				h.gapSize = make([]int32, len(h.mem))
			}
			h.gapSize[t.top] = int32(unused)
			h.free[unused] = append(h.free[unused], t.top)
		}
	}
	h.Stats.TLABWasteWords += int64(waste)
	h.Stats.TLABReturnedWords += int64(returned)
	h.tlabs.live--
	if t.young {
		h.tlabs.noteYoungCarve(t.shard, -1)
	}
	*t = TLAB{}
	return waste, returned
}

// NeedTLAB is the TLAB-aware form of Need: it reports whether an n-field
// allocation would still fail if a task retried it right now through the
// TLAB path (refill carve, then the shared-heap fallback). The recovery
// ladder's rescue check must use this form on a TLAB heap — judging a
// TLAB-eligible retry against Need alone ignores that the retry refills
// from the nursery (or bump region) via a clamped carve, which succeeds
// whenever the object itself fits.
func (h *Heap) NeedTLAB(n int) bool {
	if !h.tlabs.enabled {
		return h.Need(n)
	}
	total := h.objWords(n)
	if h.TLABEligible(n) {
		if h.young.enabled {
			y := &h.young
			s := &y.shards[y.allocShard]
			return s.youngAlloc+total > s.youngOff+y.youngWords
		}
		if h.alloc+total <= h.limit {
			return false
		}
		// The carve failed but the slow-path fallback may still serve the
		// object from a mark/sweep free list.
		if h.kind == MarkSweep {
			return len(h.free[total]) == 0
		}
		return true
	}
	return h.Need(n)
}

// VerifyTLABs checks the TLAB bookkeeping invariants after a collection:
// no buffer may survive into (or out of) a collection un-retired.
func (h *Heap) VerifyTLABs() []error {
	if h.tlabs.live != 0 {
		return []error{fmt.Errorf("heap verify: %d TLABs still live after a collection", h.tlabs.live)}
	}
	return nil
}
