package heap

import (
	"testing"

	"tagfree/internal/code"
)

// FuzzMarkSweepFreeList drives a mark/sweep heap through arbitrary
// alloc/drop/collect sequences decoded from the fuzz input and checks the
// side-metadata invariants after every collection: the object-start table,
// the mark bits, the gap table and the exact-size free lists must never
// disagree about what each word of the heap is.
func FuzzMarkSweepFreeList(f *testing.F) {
	f.Add([]byte{0, 3, 0, 5, 1, 0, 2, 0, 2, 0, 7})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 1, 0, 2, 0, 1, 2})
	f.Add([]byte{2, 2, 0, 8, 1, 0, 2, 0, 8, 0, 8, 1, 1, 2, 0, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const heapWords = 256
		h := NewMarkSweep(code.ReprTagFree, heapWords)

		type obj struct {
			ptr  code.Word
			size int
		}
		var live []obj

		collect := func() {
			h.BeginGC()
			for _, o := range live {
				if _, fresh := h.VisitObject(o.ptr, o.size); !fresh {
					t.Fatalf("live object at %v visited twice in one collection", o.ptr)
				}
			}
			h.EndGC()
			checkMarkSweepInvariants(t, h, func() map[int]int {
				m := make(map[int]int, len(live))
				for _, o := range live {
					m[h.addrIndex(o.ptr)] = o.size
				}
				return m
			}())
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 3 {
			case 0: // alloc, size from the next byte
				i++
				if i >= len(ops) {
					return
				}
				size := int(ops[i]%8) + 1
				if h.Need(size) {
					// Would not fit (bump region full, no matching free
					// block) — allocating would OOM, skip.
					continue
				}
				ptr := h.MustAlloc(size)
				base := h.addrIndex(ptr)
				if int(h.objSize[base]) != size {
					t.Fatalf("alloc(%d): objSize[%d] = %d", size, base, h.objSize[base])
				}
				live = append(live, obj{ptr, size})
			case 1: // drop one live object (becomes garbage for the next GC)
				if len(live) == 0 {
					continue
				}
				i++
				k := 0
				if i < len(ops) {
					k = int(ops[i]) % len(live)
				}
				live = append(live[:k], live[k+1:]...)
			case 2: // collect
				collect()
			}
		}
		collect()
	})
}

// checkMarkSweepInvariants validates the heap's side metadata right after
// a collection. liveAt maps object base offsets to their sizes.
func checkMarkSweepInvariants(t *testing.T, h *Heap, liveAt map[int]int) {
	t.Helper()

	// 1. Live objects keep their allocation extent; mark bits are reset.
	for base, size := range liveAt {
		if int(h.objSize[base]) != size {
			t.Fatalf("live object at %d: objSize %d, want %d", base, h.objSize[base], size)
		}
		if h.marks[base] != 0 {
			t.Fatalf("mark bit not cleared at %d", base)
		}
	}

	// 2. Free-list blocks are in bounds, disjoint, sized per their list,
	// and agree with the gap table; none overlaps a live object.
	freeWords := 0
	seen := map[int]bool{}
	for size, list := range h.free {
		for _, base := range list {
			if base < 0 || base+size > len(h.mem) {
				t.Fatalf("free block [%d,%d) out of bounds", base, base+size)
			}
			if seen[base] {
				t.Fatalf("offset %d on two free lists", base)
			}
			seen[base] = true
			if h.objSize[base] != 0 {
				t.Fatalf("free block at %d still has objSize %d", base, h.objSize[base])
			}
			if int(h.gapSize[base]) != size {
				t.Fatalf("free block at %d: gapSize %d on the %d-word list", base, h.gapSize[base], size)
			}
			if _, isLive := liveAt[base]; isLive {
				t.Fatalf("offset %d is both live and free", base)
			}
			freeWords += size
		}
	}
	if got := h.FreeListWords(); got != freeWords {
		t.Fatalf("FreeListWords() = %d, walk found %d", got, freeWords)
	}

	// 3. Walking the swept region by extents covers every word exactly
	// once: each base is a live object or a free block, and the sum of
	// live + free words is the bump high-water mark.
	liveWords := 0
	for base := 0; base < h.alloc; {
		if size, ok := liveAt[base]; ok {
			liveWords += size
			base += size
			continue
		}
		if n := int(h.gapSize[base]); n > 0 && h.objSize[base] == 0 {
			if !seen[base] {
				t.Fatalf("gap at %d not on any free list", base)
			}
			base += n
			continue
		}
		t.Fatalf("offset %d is neither a live object nor a free block", base)
	}
	if liveWords+freeWords != h.alloc {
		t.Fatalf("live %d + free %d != swept region %d", liveWords, freeWords, h.alloc)
	}
	if h.Stats.LiveAfterLastGC != int64(liveWords) {
		t.Fatalf("LiveAfterLastGC = %d, walk found %d", h.Stats.LiveAfterLastGC, liveWords)
	}
}
