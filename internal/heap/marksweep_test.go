package heap

import (
	"strings"
	"testing"

	"tagfree/internal/code"
)

// TestMarkSweepCycles stresses alloc → collect → realloc cycles with mixed
// size classes and verifies surviving contents.
func TestMarkSweepCycles(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 64)
	alloc := func(vals ...code.Word) code.Word {
		p := h.MustAlloc(len(vals))
		for i, v := range vals {
			h.SetField(p, i, v)
		}
		return p
	}
	check := func(p code.Word, vals ...code.Word) {
		for i, v := range vals {
			if got := h.Field(p, i); got != v {
				t.Fatalf("field %d = %d, want %d", i, got, v)
			}
		}
	}

	live2 := alloc(11, 12)
	_ = alloc(666, 667) // dies
	live3 := alloc(21, 22, 23)
	_ = alloc(777, 778, 779) // dies
	live1 := alloc(31)

	h.BeginGC()
	for _, p := range []code.Word{live2, live3, live1} {
		n := 2
		if p == live3 {
			n = 3
		}
		if p == live1 {
			n = 1
		}
		if np, fresh := h.VisitObject(p, n); !fresh || np != p {
			t.Fatalf("first visit should be fresh and identity")
		}
		if _, fresh := h.VisitObject(p, n); fresh {
			t.Fatalf("second visit must not be fresh")
		}
	}
	h.EndGC()

	check(live2, 11, 12)
	check(live3, 21, 22, 23)
	check(live1, 31)

	// Reallocate from the freed blocks: one 2-word, one 3-word.
	n2 := alloc(41, 42)
	n3 := alloc(51, 52, 53)
	check(live2, 11, 12)
	check(live3, 21, 22, 23)
	check(n2, 41, 42)
	check(n3, 51, 52, 53)

	// Second collection: keep only n2 and live1.
	h.BeginGC()
	h.VisitObject(n2, 2)
	h.VisitObject(live1, 1)
	h.EndGC()
	check(n2, 41, 42)
	check(live1, 31)

	// Everything freed should be reusable: fill the heap with 2-word objects.
	count := 0
	for !h.Need(2) {
		alloc(code.Word(100+count), code.Word(200+count))
		count++
		if count > 100 {
			break
		}
	}
	check(n2, 41, 42)
	check(live1, 31)
	if count == 0 {
		t.Fatal("no reuse possible after sweep")
	}
}

// TestMarkSweepGapPersistence checks that swept gaps survive multiple
// collections without being reallocated.
func TestMarkSweepGapPersistence(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 32)
	a := h.MustAlloc(4)
	b := h.MustAlloc(4)
	h.SetField(b, 0, 99)
	// a dies, b lives, across three collections.
	for i := 0; i < 3; i++ {
		h.BeginGC()
		h.VisitObject(b, 4)
		h.EndGC()
	}
	_ = a
	if h.Field(b, 0) != 99 {
		t.Fatal("b corrupted")
	}
	// The gap from a must be allocatable exactly once.
	p := h.MustAlloc(4)
	if p == b {
		t.Fatal("allocator returned a live block")
	}
	h.SetField(p, 0, 55)
	if h.Field(b, 0) != 99 {
		t.Fatal("allocation overlapped live object")
	}
}

func TestPoisonedSweep(t *testing.T) {
	// Exactly-full heap: reallocation must reuse the swept block.
	h := NewMarkSweep(code.ReprTagFree, 5)
	h.SetPoison(true)
	dead := h.MustAlloc(3)
	h.SetField(dead, 0, 111)
	live := h.MustAlloc(2)
	h.SetField(live, 0, 222)
	h.BeginGC()
	h.VisitObject(live, 2)
	h.EndGC()
	if h.Field(live, 0) != 222 {
		t.Fatal("live object poisoned")
	}
	// The dead block's memory is now sentinel-filled (read it raw via a
	// fresh allocation of the same size, before writing fields).
	p := h.MustAlloc(3)
	if p != dead {
		t.Fatalf("expected reuse of the freed block")
	}
	if h.Field(p, 0) != PoisonWord {
		t.Fatalf("freed block not poisoned: %d", h.Field(p, 0))
	}
}

// TestMarkSweepOOMReportsFreeListWords documents the exact-size free-list
// limitation (BiBoP: a block is reused only for its own size class): a
// heap whose free lists hold plenty of storage still cannot satisfy an
// allocation of a size class it has never freed. The failure must say so —
// before this test, the OutOfMemoryError reported "0 free" while 32 words
// sat on the free lists, and diagnosing the OOM meant reading the sweep.
func TestMarkSweepOOMReportsFreeListWords(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 32)
	for i := 0; i < 8; i++ {
		h.MustAlloc(4)
	}
	// Collect with nothing live: all 32 words land on the 4-word free list.
	h.BeginGC()
	h.EndGC()
	if h.FreeListWords() != 32 {
		t.Fatalf("free lists hold %d words, want 32", h.FreeListWords())
	}

	// A 4-word allocation recycles a free block.
	hitsBefore := h.Stats.FreeListHits
	h.MustAlloc(4)
	if h.Stats.FreeListHits != hitsBefore+1 {
		t.Fatal("4-word allocation did not recycle a free block")
	}

	// A 3-word allocation cannot be satisfied despite 28 free words.
	if !h.Need(3) {
		t.Fatal("Need(3) false: exact-size free lists cannot satisfy a 3-word request")
	}
	_, err := h.Alloc(3)
	oom, ok := err.(*OutOfMemoryError)
	if !ok {
		t.Fatalf("Alloc(3) error = %v, want *OutOfMemoryError", err)
	}
	if oom.Discipline != "mark/sweep" || oom.Requested != 3 || oom.Free != 0 || oom.FreeListWords != 28 {
		t.Fatalf("OutOfMemoryError = %+v, want Discipline=mark/sweep Requested=3 Free=0 FreeListWords=28", oom)
	}
	if !strings.Contains(oom.Error(), "28 more words on mismatched free lists") {
		t.Fatalf("error message hides the free-list storage: %q", oom.Error())
	}
}
