package heap

import (
	"testing"
	"testing/quick"

	"tagfree/internal/code"
)

func TestAllocTagFree(t *testing.T) {
	h := New(code.ReprTagFree, 100)
	p1 := h.MustAlloc(2)
	p2 := h.MustAlloc(3)
	if p1 == p2 {
		t.Fatal("distinct allocations share an address")
	}
	h.SetField(p1, 0, 42)
	h.SetField(p1, 1, 43)
	h.SetField(p2, 2, 99)
	if h.Field(p1, 0) != 42 || h.Field(p1, 1) != 43 || h.Field(p2, 2) != 99 {
		t.Fatal("field round-trip failed")
	}
	if h.Used() != 5 {
		t.Fatalf("used = %d, want 5 (no headers in tag-free mode)", h.Used())
	}
}

func TestAllocTaggedHeaders(t *testing.T) {
	h := New(code.ReprTagged, 100)
	p := h.MustAlloc(2)
	if h.Used() != 3 {
		t.Fatalf("used = %d, want 3 (header + 2 fields)", h.Used())
	}
	if h.ObjLen(p) != 2 {
		t.Fatalf("ObjLen = %d, want 2", h.ObjLen(p))
	}
	h.SetField(p, 0, code.EncodeInt(code.ReprTagged, 7))
	if code.DecodeInt(code.ReprTagged, h.Field(p, 0)) != 7 {
		t.Fatal("tagged field round-trip failed")
	}
}

func TestNeed(t *testing.T) {
	h := New(code.ReprTagFree, 10)
	if h.Need(10) {
		t.Fatal("empty heap should fit 10 words")
	}
	h.MustAlloc(8)
	if !h.Need(3) {
		t.Fatal("should need collection for 3 more words")
	}
	if h.Need(2) {
		t.Fatal("2 words still fit")
	}
}

func TestCopyCollectTagFree(t *testing.T) {
	h := New(code.ReprTagFree, 100)
	p1 := h.MustAlloc(2)
	h.SetField(p1, 0, 1)
	h.SetField(p1, 1, 2)
	garbage := h.MustAlloc(10)
	_ = garbage
	p2 := h.MustAlloc(1)
	h.SetField(p2, 0, p1) // p2 points at p1

	h.BeginGC()
	if _, ok := h.Forwarded(p1); ok {
		t.Fatal("nothing forwarded yet")
	}
	n1 := h.CopyObject(p1, 2)
	if fwd, ok := h.Forwarded(p1); !ok || fwd != n1 {
		t.Fatal("forwarding not recorded")
	}
	// Copying again must be detected by the caller via Forwarded; the copy
	// preserved the fields.
	if h.Field(n1, 0) != 1 || h.Field(n1, 1) != 2 {
		t.Fatal("copy corrupted fields")
	}
	n2 := h.CopyObject(p2, 1)
	h.SetField(n2, 0, n1)
	h.EndGC()

	if h.Used() != 3 {
		t.Fatalf("after GC used = %d, want 3 (garbage dropped)", h.Used())
	}
	if h.Stats.Collections != 1 || h.Stats.LiveAfterLastGC != 3 {
		t.Fatalf("stats: %+v", h.Stats)
	}
	// New space allocations work.
	p3 := h.MustAlloc(4)
	h.SetField(p3, 3, 123)
	if h.Field(p3, 3) != 123 {
		t.Fatal("post-GC allocation broken")
	}
}

func TestCopyCollectTaggedBrokenHeart(t *testing.T) {
	h := New(code.ReprTagged, 100)
	p := h.MustAlloc(3)
	h.SetField(p, 0, code.EncodeInt(code.ReprTagged, 5))
	h.BeginGC()
	n := h.CopyObject(p, 3)
	if fwd, ok := h.Forwarded(p); !ok || fwd != n {
		t.Fatal("broken heart not readable")
	}
	h.EndGC()
	if h.ObjLen(n) != 3 {
		t.Fatal("copied header corrupted")
	}
}

func TestForwardingTableCleared(t *testing.T) {
	h := New(code.ReprTagFree, 50)
	p := h.MustAlloc(1)
	h.BeginGC()
	h.CopyObject(p, 1)
	h.EndGC()
	p2 := h.MustAlloc(1)
	h.BeginGC()
	if _, ok := h.Forwarded(p2); ok {
		t.Fatal("stale forwarding entry survived the flip")
	}
	h.EndGC()
}

func TestOutOfMemoryError(t *testing.T) {
	h := New(code.ReprTagFree, 4)
	_, err := h.Alloc(10)
	oom, ok := err.(*OutOfMemoryError)
	if !ok {
		t.Fatalf("Alloc(10) error = %v, want *OutOfMemoryError", err)
	}
	if oom.Discipline != "copying" || oom.Requested != 10 || oom.Free != 4 {
		t.Fatalf("OutOfMemoryError = %+v, want Discipline=copying Requested=10 Free=4", oom)
	}
	// MustAlloc converts the same failure to a panic for pre-checked callers.
	defer func() {
		if _, ok := recover().(*OutOfMemoryError); !ok {
			t.Fatal("MustAlloc did not panic with OutOfMemoryError")
		}
	}()
	h.MustAlloc(10)
}

// TestOOMErrorUniformFormat pins the satellite fix: both disciplines report
// exhaustion with the same Error() shape, naming the discipline and the
// requested/free words.
func TestOOMErrorUniformFormat(t *testing.T) {
	hc := New(code.ReprTagFree, 4)
	_, errC := hc.Alloc(6)
	if got := errC.Error(); got != "heap exhausted (copying): need 6 words, 4 contiguous free" {
		t.Fatalf("copying OOM message = %q", got)
	}
	hm := NewMarkSweep(code.ReprTagFree, 4)
	_, errM := hm.Alloc(6)
	if got := errM.Error(); got != "heap exhausted (mark/sweep): need 6 words, 4 contiguous free" {
		t.Fatalf("mark/sweep OOM message = %q", got)
	}
}

func TestScanToSpaceCheney(t *testing.T) {
	h := New(code.ReprTagged, 200)
	// A chain a -> b -> c plus garbage between.
	c := h.MustAlloc(1)
	h.SetField(c, 0, code.EncodeInt(code.ReprTagged, 3))
	h.MustAlloc(5)
	b := h.MustAlloc(1)
	h.SetField(b, 0, c)
	h.MustAlloc(7)
	a := h.MustAlloc(1)
	h.SetField(a, 0, b)

	h.BeginGC()
	na := h.CopyObject(a, 1)
	copied := 1
	h.ScanToSpace(func(w code.Word) code.Word {
		if !code.IsBoxedValue(code.ReprTagged, w) {
			return w
		}
		if fwd, ok := h.Forwarded(w); ok {
			return fwd
		}
		copied++
		return h.CopyObject(w, h.ObjLen(w))
	})
	h.EndGC()
	if copied != 3 {
		t.Fatalf("copied %d objects, want 3", copied)
	}
	nb := h.Field(na, 0)
	nc := h.Field(nb, 0)
	if code.DecodeInt(code.ReprTagged, h.Field(nc, 0)) != 3 {
		t.Fatal("chain broken after Cheney scan")
	}
	if h.Used() != 6 {
		t.Fatalf("used = %d, want 6 (three headered 1-field objects)", h.Used())
	}
}

// TestGraphPreservationProperty builds random object graphs directly on the
// heap, collects with a trivial tracer, and verifies the reachable graph is
// isomorphic afterwards.
func TestGraphPreservationProperty(t *testing.T) {
	f := func(seed16 [16]uint8) bool {
		h := New(code.ReprTagged, 4096)
		// Build a random DAG of 2-field nodes; field values are either
		// small ints or pointers to earlier nodes.
		var nodes []code.Word
		for i, s := range seed16 {
			p := h.MustAlloc(2)
			for fno := 0; fno < 2; fno++ {
				sel := (int(s) >> (fno * 4)) & 0xf
				if len(nodes) > 0 && sel < 8 {
					h.SetField(p, fno, nodes[sel%len(nodes)])
				} else {
					h.SetField(p, fno, code.EncodeInt(code.ReprTagged, int64(i*10+fno)))
				}
			}
			nodes = append(nodes, p)
		}
		root := nodes[len(nodes)-1]
		before := snapshot(h, root)

		h.BeginGC()
		var trace func(w code.Word) code.Word
		trace = func(w code.Word) code.Word {
			if !code.IsBoxedValue(code.ReprTagged, w) {
				return w
			}
			if fwd, ok := h.Forwarded(w); ok {
				return fwd
			}
			n := h.CopyObject(w, 2)
			h.SetField(n, 0, trace(h.Field(n, 0)))
			h.SetField(n, 1, trace(h.Field(n, 1)))
			return n
		}
		newRoot := trace(root)
		h.EndGC()

		after := snapshot(h, newRoot)
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// snapshot serializes the reachable graph from root as a canonical int
// sequence (preorder with backreference indexes).
func snapshot(h *Heap, root code.Word) []int64 {
	var out []int64
	seen := map[code.Word]int{}
	var walk func(w code.Word)
	walk = func(w code.Word) {
		if !code.IsBoxedValue(code.ReprTagged, w) {
			out = append(out, -1, code.DecodeInt(code.ReprTagged, w))
			return
		}
		if idx, ok := seen[w]; ok {
			out = append(out, -2, int64(idx))
			return
		}
		seen[w] = len(seen)
		out = append(out, -3)
		walk(h.Field(w, 0))
		walk(h.Field(w, 1))
	}
	walk(root)
	return out
}
