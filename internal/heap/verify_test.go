package heap

import (
	"strings"
	"testing"

	"tagfree/internal/code"
)

// collectAll runs a trivial copying collection retaining the given roots
// (flat objects, no interior pointers) and returns their new pointers.
func collectAll(h *Heap, roots []code.Word, sizes []int) []code.Word {
	h.BeginGC()
	out := make([]code.Word, len(roots))
	for i, r := range roots {
		p, _ := h.VisitObject(r, sizes[i])
		out[i] = p
	}
	h.EndGC()
	return out
}

func TestVerifyCopyingCleanHeap(t *testing.T) {
	h := New(code.ReprTagFree, 64)
	h.SetVerify(true)
	a := h.MustAlloc(2)
	h.SetField(a, 0, code.EncodeInt(h.Repr, 7))
	b := h.MustAlloc(3)
	_ = h.MustAlloc(5) // garbage
	ps := collectAll(h, []code.Word{a, b}, []int{2, 3})
	if errs := h.VerifyHeap(); len(errs) != 0 {
		t.Fatalf("clean heap reported violations: %v", errs)
	}
	if err := h.CheckLive(ps[0], 2); err != nil {
		t.Fatalf("CheckLive on a live object: %v", err)
	}
	if err := h.CheckLive(ps[0], 3); err == nil {
		t.Fatal("CheckLive accepted a wrong extent")
	}
	// An interior pointer is not an object start.
	interior := code.EncodePtr(h.Repr, code.DecodePtr(h.Repr, ps[1])+1)
	if err := h.CheckLive(interior, 2); err == nil {
		t.Fatal("CheckLive accepted an interior pointer")
	}
	// Mutator allocation ends the exact-span window; bounds checking remains.
	h.MustAlloc(1)
	if err := h.CheckLive(ps[0], 2); err != nil {
		t.Fatalf("CheckLive after mutator alloc: %v", err)
	}
}

func TestVerifyTaggedHeap(t *testing.T) {
	h := New(code.ReprTagged, 64)
	h.SetVerify(true)
	a := h.MustAlloc(1)
	b := h.MustAlloc(2)
	h.SetField(b, 0, a)
	h.SetField(b, 1, code.EncodeInt(h.Repr, 9))
	h.BeginGC()
	nb := h.CopyObject(b, 2)
	h.ScanToSpace(func(w code.Word) code.Word {
		if !code.IsBoxedValue(code.ReprTagged, w) {
			return w
		}
		if fwd, ok := h.Forwarded(w); ok {
			return fwd
		}
		return h.CopyObject(w, h.ObjLen(w))
	})
	h.EndGC()
	if errs := h.VerifyHeap(); len(errs) != 0 {
		t.Fatalf("clean tagged heap reported violations: %v", errs)
	}
	// Corrupt a pointer field to aim at an interior word: the header walk
	// must flag it.
	h.SetField(nb, 0, h.Field(nb, 0)+2)
	errs := h.VerifyHeap()
	if len(errs) == 0 {
		t.Fatal("corrupted pointer field not reported")
	}
	if !strings.Contains(errs[0].Error(), "not an object start") {
		t.Fatalf("unexpected violation: %v", errs[0])
	}
}

func TestVerifyMarkSweepCleanAndCorrupted(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 32)
	a := h.MustAlloc(3)
	_ = h.MustAlloc(4) // dies
	b := h.MustAlloc(2)
	h.BeginGC()
	h.VisitObject(a, 3)
	h.VisitObject(b, 2)
	h.EndGC()
	if errs := h.VerifyHeap(); len(errs) != 0 {
		t.Fatalf("clean mark/sweep heap reported violations: %v", errs)
	}
	if err := h.CheckLive(a, 3); err != nil {
		t.Fatalf("CheckLive on a live block: %v", err)
	}

	// Duplicate a free-list entry: disjointness must fail.
	l := h.free[4]
	if len(l) != 1 {
		t.Fatalf("free list for 4-word blocks has %d entries, want 1", len(l))
	}
	h.free[4] = append(l, l[0])
	errs := h.VerifyHeap()
	if len(errs) == 0 {
		t.Fatal("duplicated free-list entry not reported")
	}
	h.free[4] = l

	// An unaccounted word (no object, no gap) breaks the tiling.
	base := h.addrIndex(a)
	h.objSize[base] = 0
	errs = h.VerifyHeap()
	if len(errs) == 0 {
		t.Fatal("unaccounted words not reported")
	}
	if !strings.Contains(errs[0].Error(), "neither in an object nor a swept gap") {
		t.Fatalf("unexpected violation: %v", errs[0])
	}
	h.objSize[base] = 3
}

func TestVerifyCatchesMissedCopy(t *testing.T) {
	h := New(code.ReprTagFree, 64)
	h.SetVerify(true)
	a := h.MustAlloc(2)
	b := h.MustAlloc(3)
	collectAll(h, []code.Word{a, b}, []int{2, 3})
	// Fake a forwarding hole: pretend the collector bump-allocated past the
	// recorded spans (as if an object were copied without being recorded).
	h.alloc += 2
	errs := h.VerifyHeap()
	if len(errs) == 0 {
		t.Fatal("span/alloc mismatch not reported")
	}
	h.alloc -= 2
}

func TestGrowCopyingPreservesPointers(t *testing.T) {
	for _, repr := range []code.Repr{code.ReprTagFree, code.ReprTagged} {
		h := New(repr, 16)
		a := h.MustAlloc(2)
		h.SetField(a, 0, code.EncodeInt(repr, 41))
		h.SetField(a, 1, code.EncodeInt(repr, 42))
		if err := h.Grow(8); err == nil {
			t.Fatal("Grow to a smaller size succeeded")
		}
		if err := h.Grow(64); err != nil {
			t.Fatalf("Grow: %v", err)
		}
		if h.SemiWords() != 64 {
			t.Fatalf("SemiWords = %d after Grow(64)", h.SemiWords())
		}
		if got := code.DecodeInt(repr, h.Field(a, 1)); got != 42 {
			t.Fatalf("field after Grow = %d, want 42 (repr %v)", got, repr)
		}
		// The grown heap must survive collections in both flip parities.
		for i := 0; i < 2; i++ {
			a = collectAll(h, []code.Word{a}, []int{2})[0]
			if got := code.DecodeInt(repr, h.Field(a, 0)); got != 41 {
				t.Fatalf("field after post-Grow GC %d = %d, want 41 (repr %v)", i, got, repr)
			}
			big := h.MustAlloc(40) // would not fit in the old 16-word space
			h.SetField(big, 39, code.EncodeInt(repr, 7))
		}
	}
}

func TestGrowMarkSweepPreservesBlocks(t *testing.T) {
	h := NewMarkSweep(code.ReprTagFree, 16)
	a := h.MustAlloc(3)
	h.SetField(a, 2, code.EncodeInt(h.Repr, 5))
	_ = h.MustAlloc(13) // fill the space
	if !h.Need(4) {
		t.Fatal("heap should be full")
	}
	if err := h.Grow(64); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if h.Need(4) {
		t.Fatal("grown heap still reports Need(4)")
	}
	h.MustAlloc(4)
	if got := code.DecodeInt(h.Repr, h.Field(a, 2)); got != 5 {
		t.Fatalf("field after Grow = %d, want 5", got)
	}
	h.BeginGC()
	h.VisitObject(a, 3)
	h.EndGC()
	if errs := h.VerifyHeap(); len(errs) != 0 {
		t.Fatalf("grown mark/sweep heap fails verification: %v", errs)
	}
	if h.Stats.Growths != 1 {
		t.Fatalf("Growths = %d, want 1", h.Stats.Growths)
	}
}

func TestGrowDuringGCRefused(t *testing.T) {
	h := New(code.ReprTagFree, 16)
	h.BeginGC()
	if err := h.Grow(64); err == nil {
		t.Fatal("Grow during a collection succeeded")
	}
	h.EndGC()
}
