// Package heap implements the simulated heap: a flat word array split into
// two semispaces for copying collection.
//
// The reproduction cannot observe a real process heap (the Go runtime's own
// collector interferes), so all MinML objects live in this array and all
// "pointers" are indexes offset by code.HeapBase. Two object formats are
// supported:
//
//   - Tag-free (the paper's design): an object is exactly its fields; there
//     are no headers. Object extents come from the compiler-generated GC
//     metadata that drives the collector. Forwarding during copying uses a
//     side table indexed by from-space offset (a real implementation would
//     overwrite the first field and detect to-space addresses; the side
//     table is equivalent and keeps the simulation honest about not needing
//     in-object bits).
//   - Tagged (the baseline): every object carries one header word encoding
//     its length, and the collector relies on per-word tags. Forwarding
//     overwrites the header with a broken-heart pointer (headers are odd,
//     pointers even).
//
// The heap never triggers collection itself: the abstract machine checks
// Need before allocating and runs a collector at a safe point, matching the
// paper's "collection can only be initiated by a call to an allocating
// procedure" discipline (§2.1).
package heap

import (
	"fmt"

	"tagfree/internal/code"
)

// Stats counts heap activity for the experiment harness.
type Stats struct {
	// Allocations is the number of objects allocated.
	Allocations int64
	// WordsAllocated counts all words ever allocated (headers included).
	WordsAllocated int64
	// Collections is the number of garbage collections run.
	Collections int64
	// WordsCopied counts words copied by all collections.
	WordsCopied int64
	// LiveAfterLastGC is the resident size after the last collection.
	LiveAfterLastGC int64
	// PeakLive is the maximum resident size observed after any collection.
	PeakLive int64
	// FreeListHits counts mark/sweep allocations served by recycling a
	// free-list block instead of bumping (telemetry: free-list hit rate).
	FreeListHits int64
	// Growths counts successful Grow calls (the OOM recovery ladder's
	// grow rung).
	Growths int64
	// MinorCollections counts nursery-only collections (included in
	// Collections).
	MinorCollections int64
	// PromotedWords counts words tenured from the nursery into the old
	// region across all collections.
	PromotedWords int64
	// SharedAllocs counts allocation requests that touched the shared heap
	// — every Alloc entry plus every TLAB chunk carve. In a real runtime
	// each is a shared-heap lock acquisition; with TLABs enabled the ratio
	// SharedAllocs/Allocations is the amortized O(1/chunk) claim (tlab.go).
	SharedAllocs int64
	// TLABAllocs counts objects bump-allocated from a task-local buffer
	// (no shared-heap interaction); TLABAllocWords is their word total.
	TLABAllocs     int64
	TLABAllocWords int64
	// TLABRefills counts chunk carves; TLABRefillWords the words carved.
	TLABRefills     int64
	TLABRefillWords int64
	// TLABWasteWords counts carved words discarded at retirement (the
	// buffer tail no object fit into); TLABReturnedWords counts tails given
	// back to the region bump pointer instead. Exact accounting invariant
	// once every buffer is retired:
	// TLABRefillWords == TLABAllocWords + TLABWasteWords + TLABReturnedWords.
	TLABWasteWords    int64
	TLABReturnedWords int64
}

// Heap is a garbage-collected heap over a flat word array: a semispace
// copying heap by default, or a mark/sweep heap (see marksweep.go).
type Heap struct {
	Repr code.Repr
	kind GCKind
	mem  []code.Word
	semi int
	// fromOff and toOff are the base mem indexes of the two spaces.
	fromOff, toOff int
	alloc, limit   int
	// forward is the tag-free side forwarding table (from-space offsets to
	// to-space absolute indexes; -1 = not forwarded). Its storage is
	// bookkeeping of the collector, not program memory, and is excluded
	// from all space accounting.
	forward []int
	inGC    bool
	// Mark/sweep side metadata (see marksweep.go): per-object sizes at
	// their start offsets, mark bits, exact-size free lists, and the sizes
	// of swept gaps awaiting reuse.
	objSize []int32
	// marks holds one mark word per heap word (nonzero = marked). It is
	// uint32 rather than bool so parallel marking can claim objects with an
	// atomic compare-and-swap (VisitShared).
	marks   []uint32
	free    map[int][]int
	gapSize []int32
	// debugAccess validates every field access against the mark/sweep
	// allocation map (tests only).
	debugAccess bool
	// poison overwrites freed blocks with PoisonWord during sweeps.
	poison bool
	// verify enables span recording during copying collections so
	// VerifyHeap can check forwarding completeness (see verify.go).
	verify bool
	// spans records every object copied by the most recent collection, in
	// copy order (ascending base). spansValid is true only between EndGC
	// and the next mutator allocation, the window in which the spans tile
	// the active space exactly.
	spans      []span
	spansValid bool
	// young is the generational nursery state (see nursery.go); zero value
	// = no nursery, all fast paths compile to the pre-generational code.
	young nursery
	// oldReserve, during a copying major with the nursery on, is the
	// to-space headroom still owed to uncopied old objects. Promotions may
	// only take what lies beyond it: the from-space used count bounds the
	// words CopyObject can ever need, so holding that many back makes an
	// old-object copy overflow impossible no matter how the trace
	// interleaves promotions with old copies. Each old copy repays its own
	// share. Zero outside copying majors.
	oldReserve int
	// tlabs is the task-local allocation buffer state (see tlab.go); zero
	// value = no TLABs, allocation goes through Alloc unchanged.
	tlabs tlabState
	Stats Stats
}

// span is one live object's extent recorded during a verified collection.
type span struct{ base, size int }

// New creates a heap with the given semispace size in words.
func New(repr code.Repr, semiWords int) *Heap {
	h := &Heap{
		Repr:    repr,
		mem:     make([]code.Word, 2*semiWords),
		semi:    semiWords,
		fromOff: 0,
		toOff:   semiWords,
		alloc:   0,
		limit:   semiWords,
	}
	if repr == code.ReprTagFree {
		h.forward = make([]int, semiWords)
		for i := range h.forward {
			h.forward[i] = -1
		}
	}
	return h
}

// SemiWords returns the semispace size.
func (h *Heap) SemiWords() int { return h.semi }

// MemSnapshot returns a copy of the heap's entire word array. Tests use it
// to assert that two collection configurations (sequential vs parallel,
// shuffled scan orders) leave bit-identical heaps.
func (h *Heap) MemSnapshot() []code.Word {
	return append([]code.Word(nil), h.mem...)
}

// Used returns the words currently allocated in the active space.
func (h *Heap) Used() int { return h.alloc - h.fromOff }

// OccupiedWords estimates the words actually holding objects: the bump
// high-water mark minus the storage parked on the mark/sweep free lists
// (on a copying heap the two coincide — nothing is parked). The concurrent
// mark trigger watches this figure: Used alone saturates permanently once
// a mark/sweep bump region has filled, even when sweeps have recycled most
// of it.
func (h *Heap) OccupiedWords() int {
	return h.Used() - h.FreeListWords()
}

// ActiveSnapshot returns a copy of the allocated words of the active
// space. On a copying heap right after a full collection this is the
// trace-order-deterministic image of the live heap — the TLAB differential
// suite bit-compares it across configurations that must converge on the
// same layout. (Mark/sweep layouts are history-dependent; compare those
// with gc.LiveSignature instead.)
func (h *Heap) ActiveSnapshot() []code.Word {
	out := make([]code.Word, h.alloc-h.fromOff)
	copy(out, h.mem[h.fromOff:h.alloc])
	return out
}

// Need reports whether allocating n object words (plus a header in tagged
// mode) requires a collection first. With a nursery, a request that fits a
// young half checks only the nursery bump (a minor collection empties it);
// oversize requests are pre-tenured and check the old region as before.
func (h *Heap) Need(n int) bool {
	total := h.objWords(n)
	if h.young.enabled && total <= h.young.youngWords {
		s := &h.young.shards[h.young.allocShard]
		return s.youngAlloc+total > s.youngOff+h.young.youngWords
	}
	if h.kind == MarkSweep {
		return !h.msCanAlloc(total)
	}
	return h.alloc+total > h.limit
}

func (h *Heap) objWords(fields int) int {
	if h.Repr == code.ReprTagged {
		return fields + 1
	}
	return fields
}

// Alloc allocates an object with n fields and returns its encoded pointer,
// or a *OutOfMemoryError when the space is exhausted. Exhaustion is an
// ordinary return value — not a panic — so callers (the VM, the tasking
// scheduler) can climb the recovery ladder: collect, retry, grow, and only
// then fault. Fields are uninitialized; in tagged mode the header is
// written.
func (h *Heap) Alloc(n int) (code.Word, error) {
	total := h.objWords(n)
	h.Stats.SharedAllocs++
	if h.young.enabled && !h.inGC && total <= h.young.youngWords {
		if ptr, ok := h.youngAllocFast(total); ok {
			return ptr, nil
		}
		s := &h.young.shards[h.young.allocShard]
		return 0, &OutOfMemoryError{Discipline: "nursery", Requested: total,
			Free: s.youngOff + h.young.youngWords - s.youngAlloc}
	}
	if h.kind == MarkSweep {
		return h.msAlloc(total)
	}
	if h.alloc+total > h.limit {
		return 0, h.oomError(total)
	}
	base := h.alloc
	h.alloc += total
	h.spansValid = false
	h.Stats.Allocations++
	h.Stats.WordsAllocated += int64(total)
	if h.Repr == code.ReprTagged {
		h.mem[base] = code.Word(n)<<1 | 1 // odd header: field count
	}
	return code.EncodePtr(h.Repr, code.HeapBase+base), nil
}

// MustAlloc is Alloc for callers that have already ensured space (Need
// returned false, possibly after a collection): it panics on exhaustion.
func (h *Heap) MustAlloc(n int) code.Word {
	ptr, err := h.Alloc(n)
	if err != nil {
		panic(err)
	}
	return ptr
}

// OutOfMemoryError reports heap exhaustion that a collection did not cure.
type OutOfMemoryError struct {
	// Discipline names the heap discipline that ran out ("copying" or
	// "mark/sweep"), so both variants report uniformly.
	Discipline string
	Requested  int
	// Free is the contiguous bump-region space still available.
	Free int
	// FreeListWords is the storage parked on mark/sweep free lists whose
	// size classes did not match the request. Nonzero means the heap had
	// room in aggregate but the exact-size (BiBoP) discipline could not use
	// it — without this field the "0 free" diagnostic was misleading.
	FreeListWords int
}

// Error implements the error interface. The format is uniform across both
// disciplines: "heap exhausted (<discipline>): need N words, M contiguous
// free", with the mismatched free-list storage appended when nonzero.
func (e *OutOfMemoryError) Error() string {
	s := fmt.Sprintf("heap exhausted (%s): need %d words, %d contiguous free",
		e.Discipline, e.Requested, e.Free)
	if e.FreeListWords > 0 {
		s += fmt.Sprintf(" (%d more words on mismatched free lists)", e.FreeListWords)
	}
	return s
}

// oomError builds the typed exhaustion failure for a request of total
// words, capturing the current discipline's free-space picture.
func (h *Heap) oomError(total int) *OutOfMemoryError {
	e := &OutOfMemoryError{Discipline: "copying", Requested: total, Free: h.limit - h.alloc}
	if h.kind == MarkSweep {
		e.Discipline = "mark/sweep"
		e.FreeListWords = h.FreeListWords()
	}
	return e
}

// addrIndex converts an encoded pointer to a mem index.
func (h *Heap) addrIndex(ptr code.Word) int {
	return code.DecodePtr(h.Repr, ptr) - code.HeapBase
}

// fieldBase returns the mem index of field 0.
func (h *Heap) fieldBase(ptr code.Word) int {
	base := h.addrIndex(ptr)
	if h.Repr == code.ReprTagged {
		return base + 1
	}
	return base
}

// Field reads field i of an object.
func (h *Heap) Field(ptr code.Word, i int) code.Word {
	if h.debugAccess {
		h.checkAccess(ptr, i)
	}
	return h.mem[h.fieldBase(ptr)+i]
}

// SetField writes field i of an object.
func (h *Heap) SetField(ptr code.Word, i int, v code.Word) {
	h.mem[h.fieldBase(ptr)+i] = v
}

// ObjLen returns a tagged object's field count from its header.
func (h *Heap) ObjLen(ptr code.Word) int {
	if h.Repr != code.ReprTagged {
		panic("ObjLen: tag-free objects have no header")
	}
	return int(h.mem[h.addrIndex(ptr)] >> 1)
}

// ---------------------------------------------------------------------------
// Collection support.
// ---------------------------------------------------------------------------

// BeginGC flips allocation into to-space. Collectors then forward roots via
// Forward*/Copy and finish with EndGC.
func (h *Heap) BeginGC() {
	if h.inGC {
		panic("BeginGC: collection already in progress")
	}
	if h.tlabs.live > 0 {
		panic("BeginGC: live TLABs must be retired before a collection")
	}
	h.inGC = true
	h.Stats.Collections++
	h.spans = h.spans[:0]
	h.spansValid = false
	if h.young.enabled {
		h.beginYoungGC(false)
	}
	if h.kind == MarkSweep {
		return // marking happens in place; nothing to flip
	}
	if h.young.enabled {
		// Promotions and old-object copies share the to-space bump; hold
		// back one word of headroom per used from-space word so the copies
		// (whose total can never exceed it) cannot be starved by an
		// unlucky promotion order.
		h.oldReserve = h.alloc - h.fromOff
	}
	h.alloc = h.toOff
	h.limit = h.toOff + h.semi
}

// EndGC completes the flip: to-space becomes the active space.
func (h *Heap) EndGC() {
	if !h.inGC {
		panic("EndGC: no collection in progress")
	}
	h.inGC = false
	h.oldReserve = 0
	if h.young.enabled {
		defer h.endYoungGC()
	}
	if h.kind == MarkSweep {
		h.msEndGC()
		return
	}
	h.fromOff, h.toOff = h.toOff, h.fromOff
	live := int64(h.alloc - h.fromOff)
	h.Stats.LiveAfterLastGC = live
	if live > h.Stats.PeakLive {
		h.Stats.PeakLive = live
	}
	if h.forward != nil {
		for i := range h.forward {
			h.forward[i] = -1
		}
	}
	h.spansValid = h.verify
}

// InGC reports whether a collection is in progress.
func (h *Heap) InGC() bool { return h.inGC }

// Forwarded looks up a tag-free object's forwarding address; ok is false
// when the object has not been copied yet.
func (h *Heap) Forwarded(ptr code.Word) (code.Word, bool) {
	off := h.addrIndex(ptr) - h.fromOff
	if h.Repr == code.ReprTagFree {
		if h.forward[off] < 0 {
			return 0, false
		}
		return code.EncodePtr(h.Repr, code.HeapBase+h.forward[off]), true
	}
	// Tagged: broken heart replaces the (odd) header with the (even) new
	// pointer.
	hdr := h.mem[h.fromOff+off]
	if hdr&1 == 1 {
		return 0, false
	}
	return hdr, true
}

// ScanToSpace performs a Cheney scan during a tagged-mode collection:
// every field word of every object copied so far is passed through trace
// (which may copy further objects, growing the scan frontier). Object
// extents come from headers; only tagged heaps can do this without
// compiler metadata.
func (h *Heap) ScanToSpace(trace func(code.Word) code.Word) {
	if h.Repr != code.ReprTagged {
		panic("ScanToSpace: requires tagged headers")
	}
	if !h.inGC {
		panic("ScanToSpace: no collection in progress")
	}
	scan := h.toOff
	for scan < h.alloc {
		n := int(h.mem[scan] >> 1)
		for i := 1; i <= n; i++ {
			h.mem[scan+i] = trace(h.mem[scan+i])
		}
		scan += 1 + n
	}
}

// ScanToSpaceBatched is ScanToSpace with one callback per object rather
// than per field word: scan receives the object's field words as a slice
// aliasing to-space and rewrites traced values in place (copies it makes
// grow the frontier as usual). Batching removes a closure call per word
// from the tagged collection's hot scan loop; the backing array never
// moves during a collection, so the slice stays valid across copies.
func (h *Heap) ScanToSpaceBatched(scan func(fields []code.Word)) {
	if h.Repr != code.ReprTagged {
		panic("ScanToSpaceBatched: requires tagged headers")
	}
	if !h.inGC {
		panic("ScanToSpaceBatched: no collection in progress")
	}
	p := h.toOff
	for p < h.alloc {
		n := int(h.mem[p] >> 1)
		scan(h.mem[p+1 : p+1+n])
		p += 1 + n
	}
}

// CopyObject copies an n-field object into to-space during a collection,
// records its forwarding, and returns the new encoded pointer. Field
// contents are copied verbatim; the collector re-traces them via Field on
// the new pointer (Cheney-style or recursive, its choice).
func (h *Heap) CopyObject(ptr code.Word, n int) code.Word {
	if !h.inGC {
		panic("CopyObject: no collection in progress")
	}
	total := h.objWords(n)
	if h.alloc+total > h.limit {
		panic(h.oomError(total))
	}
	if h.oldReserve > 0 {
		// Repay this copy's share of the promotion holdback.
		if h.oldReserve -= total; h.oldReserve < 0 {
			h.oldReserve = 0
		}
	}
	oldBase := h.addrIndex(ptr)
	newBase := h.alloc
	h.alloc += total
	if h.verify {
		h.spans = append(h.spans, span{base: newBase, size: total})
	}
	copy(h.mem[newBase:newBase+total], h.mem[oldBase:oldBase+total])
	h.Stats.WordsCopied += int64(total)
	newPtr := code.EncodePtr(h.Repr, code.HeapBase+newBase)
	if h.Repr == code.ReprTagFree {
		h.forward[oldBase-h.fromOff] = newBase
	} else {
		h.mem[oldBase] = newPtr // broken heart (even)
	}
	return newPtr
}

// Grow extends the heap to newWords words per semispace (copying) or total
// (mark/sweep) without moving any object: every live pointer stays valid.
// It is the recovery ladder's second rung, taken only when a collection did
// not free enough space. Growing is refused during a collection and when
// newWords does not exceed the current size.
//
// Copying layout after a grow: the live from-space keeps its base offset,
// and the two (larger) spaces are laid out back-to-back above it. When the
// old from-space sat above the old to-space, the words below it become a
// permanently dead prefix — at most one pre-grow semispace per grow, a
// geometrically-shrinking overhead under any growth factor > 1 — which
// keeps growth O(live) with zero relocation.
func (h *Heap) Grow(newWords int) error {
	if h.inGC {
		return fmt.Errorf("heap: Grow during a collection")
	}
	if h.tlabs.live > 0 {
		return fmt.Errorf("heap: Grow with %d live TLABs (retire them first)", h.tlabs.live)
	}
	if newWords <= h.semi {
		return fmt.Errorf("heap: Grow(%d) does not exceed the current %d words", newWords, h.semi)
	}
	if h.kind == MarkSweep {
		// The old region sits at [fromOff, fromOff+semi); with a nursery,
		// fromOff is the fixed young prefix, which the grow preserves
		// verbatim (young objects never move).
		total := h.fromOff + newWords
		mem := make([]code.Word, total)
		copy(mem, h.mem)
		objSize := make([]int32, total)
		copy(objSize, h.objSize)
		marks := make([]uint32, total)
		copy(marks, h.marks)
		h.mem, h.objSize, h.marks = mem, objSize, marks
		if h.gapSize != nil {
			gapSize := make([]int32, total)
			copy(gapSize, h.gapSize)
			h.gapSize = gapSize
		}
		h.semi = newWords
		h.limit = h.fromOff + newWords
		h.spansValid = false
		h.Stats.Growths++
		return nil
	}
	mem := make([]code.Word, h.fromOff+2*newWords)
	copy(mem[:h.young.prefixWords()], h.mem[:h.young.prefixWords()])
	copy(mem[h.fromOff:], h.mem[h.fromOff:h.alloc])
	h.mem = mem
	h.toOff = h.fromOff + newWords
	h.limit = h.fromOff + newWords
	h.semi = newWords
	if h.Repr == code.ReprTagFree {
		h.forward = make([]int, newWords)
		for i := range h.forward {
			h.forward[i] = -1
		}
	}
	h.spansValid = false
	h.Stats.Growths++
	return nil
}
