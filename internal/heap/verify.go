package heap

import (
	"fmt"
	"sort"

	"tagfree/internal/code"
)

// Post-collection heap verification. A collector bug — a missed root, a
// stale forwarding entry, a free-list block resurrected under a live object
// — corrupts the heap long before it crashes the mutator. VerifyHeap checks
// the discipline's structural invariants immediately after a collection,
// while the heap is still in the state the collector left it:
//
//   - Copying: the objects copied this cycle must tile the new from-space
//     exactly (forwarding completeness: every allocated word belongs to
//     exactly one copied object), and the tag-free forwarding table must be
//     fully reset. Tagged heaps additionally re-walk headers, checking that
//     each is odd, extents tile the space, and every pointer-shaped field
//     lands on an object start.
//   - Mark/sweep: object and gap extents must tile the allocated region
//     with no overlap or unaccounted words, every mark bit must be clear
//     after the sweep, and the free lists must be disjoint — no block on
//     two lists, every entry a swept gap of exactly its list's size class.
//
// Span recording costs one append per copied object, so verification is
// opt-in: SetVerify(true) before running (on by default in the test
// suites, behind -verify-heap in the CLIs).

// SetVerify enables span recording during copying collections, which
// VerifyHeap and CheckLive need for exact extent checks.
func (h *Heap) SetVerify(on bool) { h.verify = on }

// VerifyHeap validates the discipline's post-collection invariants and
// returns every violation found (nil when the heap is sound). Call it
// right after a collection, before the mutator allocates again.
func (h *Heap) VerifyHeap() []error {
	var errs []error
	if h.young.enabled {
		errs = h.verifyNursery()
	}
	if h.tlabs.enabled {
		errs = append(errs, h.VerifyTLABs()...)
	}
	if h.kind == MarkSweep {
		return append(errs, h.verifyMarkSweep()...)
	}
	return append(errs, h.verifyCopying()...)
}

func (h *Heap) verifyCopying() []error {
	var errs []error
	if h.alloc < h.fromOff || h.alloc > h.limit {
		errs = append(errs, fmt.Errorf("heap verify: alloc %d outside active space [%d, %d]",
			h.alloc, h.fromOff, h.limit))
		return errs
	}
	if h.Repr == code.ReprTagFree && h.forward != nil {
		for i, f := range h.forward {
			if f >= 0 {
				errs = append(errs, fmt.Errorf("heap verify: forwarding entry %d not reset (still %d) after collection", i, f))
				break // one stale entry implies the reset loop never ran; don't spam
			}
		}
	}
	if h.spansValid {
		// Forwarding completeness: the copied spans, in copy order, must
		// tile [fromOff, alloc) exactly — no holes, no overlap.
		at := h.fromOff
		for i, s := range h.spans {
			if s.base != at {
				errs = append(errs, fmt.Errorf("heap verify: span %d starts at %d, want %d (hole or overlap in to-space)",
					i, s.base, at))
				break
			}
			at += s.size
		}
		if at != h.alloc {
			errs = append(errs, fmt.Errorf("heap verify: copied spans cover [%d, %d), allocated region ends at %d",
				h.fromOff, at, h.alloc))
		}
	}
	if h.Repr == code.ReprTagged {
		errs = append(errs, h.verifyTaggedSpace()...)
	}
	return errs
}

// verifyTaggedSpace re-walks the tagged from-space by headers: extents must
// tile the allocated region, headers must be odd, and every pointer-shaped
// field must address an object start.
func (h *Heap) verifyTaggedSpace() []error {
	var errs []error
	starts := map[int]bool{}
	for base := h.fromOff; base < h.alloc; {
		hdr := h.mem[base]
		if hdr&1 != 1 {
			errs = append(errs, fmt.Errorf("heap verify: even header %d at offset %d (broken heart left behind?)", hdr, base))
			return errs
		}
		n := int(hdr >> 1)
		if n < 0 || base+1+n > h.alloc {
			errs = append(errs, fmt.Errorf("heap verify: object at %d with %d fields overruns allocated region %d", base, n, h.alloc))
			return errs
		}
		starts[base] = true
		base += 1 + n
	}
	for base := h.fromOff; base < h.alloc; {
		n := int(h.mem[base] >> 1)
		for i := 1; i <= n; i++ {
			w := h.mem[base+i]
			if !code.IsBoxedValue(h.Repr, w) {
				continue
			}
			tgt := code.DecodePtr(h.Repr, w) - code.HeapBase
			if !starts[tgt] {
				errs = append(errs, fmt.Errorf("heap verify: field %d of object at %d points to %d, not an object start", i-1, base, tgt))
			}
		}
		base += 1 + n
	}
	return errs
}

func (h *Heap) verifyMarkSweep() []error {
	var errs []error
	// Block tiling: every word below the bump pointer is inside exactly one
	// object or one swept gap.
	starts := map[int]int{} // object start -> size
	for base := h.fromOff; base < h.alloc; {
		if n := int(h.objSize[base]); n > 0 {
			starts[base] = n
			base += n
			continue
		}
		var n int
		if h.gapSize != nil {
			n = int(h.gapSize[base])
		}
		if n <= 0 {
			errs = append(errs, fmt.Errorf("heap verify: word %d is neither in an object nor a swept gap", base))
			return errs
		}
		base += n
	}
	for base, m := range h.marks {
		if m != 0 {
			errs = append(errs, fmt.Errorf("heap verify: mark bit still set at offset %d after sweep", base))
			break
		}
	}
	// Free-list disjointness: no block on two lists, every entry a swept
	// gap of exactly its size class, inside the allocated region.
	seen := map[int]int{} // base -> size class
	classes := make([]int, 0, len(h.free))
	for n := range h.free {
		classes = append(classes, n)
	}
	sort.Ints(classes)
	for _, n := range classes {
		for _, base := range h.free[n] {
			if prev, dup := seen[base]; dup {
				errs = append(errs, fmt.Errorf("heap verify: block %d on both the %d-word and %d-word free lists", base, prev, n))
				continue
			}
			seen[base] = n
			if base < h.fromOff || base >= h.alloc {
				errs = append(errs, fmt.Errorf("heap verify: free-list block %d outside allocated region [%d, %d)", base, h.fromOff, h.alloc))
				continue
			}
			if h.objSize[base] != 0 {
				errs = append(errs, fmt.Errorf("heap verify: free-list block %d is allocated (size %d)", base, h.objSize[base]))
				continue
			}
			if h.gapSize == nil || int(h.gapSize[base]) != n {
				errs = append(errs, fmt.Errorf("heap verify: free-list block %d on the %d-word list but swept as a %d-word gap",
					base, n, h.gapAt(base)))
			}
		}
	}
	return errs
}

func (h *Heap) gapAt(base int) int {
	if h.gapSize == nil {
		return 0
	}
	return int(h.gapSize[base])
}

// CheckLive reports whether ptr addresses a live n-field object. The GC
// verifier calls it for every pointer reached from the roots after a
// collection: a traced pointer that does not land on a live block of the
// expected extent means the collector retained garbage or dropped a copy.
// On a copying heap the exact check needs the span table (SetVerify); when
// spans are unavailable it degrades to a bounds check on the active space.
func (h *Heap) CheckLive(ptr code.Word, n int) error {
	base := h.addrIndex(ptr)
	total := h.objWords(n)
	if h.young.enabled && base < h.young.prefixWords() {
		// A live young object sits in its shard's active half below the
		// bump pointer. A pointer into an evacuated half is exactly what a
		// missed write barrier leaves behind — the barrier fuzz relies on
		// this check firing for it.
		s := &h.young.shards[h.youngShardOf(base)]
		if base < s.youngOff || base+total > s.youngAlloc {
			return fmt.Errorf("young pointer to [%d, %d) outside the live nursery [%d, %d)",
				base, base+total, s.youngOff, s.youngAlloc)
		}
		return nil
	}
	if h.kind == MarkSweep {
		if base < 0 || base >= len(h.objSize) {
			return fmt.Errorf("pointer to offset %d outside the heap", base)
		}
		if h.objSize[base] == 0 {
			return fmt.Errorf("pointer to freed block at offset %d", base)
		}
		if int(h.objSize[base]) != total {
			return fmt.Errorf("pointer to block at offset %d sized %d, traced as %d", base, h.objSize[base], total)
		}
		return nil
	}
	if base < h.fromOff || base+total > h.alloc {
		return fmt.Errorf("pointer to [%d, %d) outside the live region [%d, %d)", base, base+total, h.fromOff, h.alloc)
	}
	if h.spansValid {
		i := sort.Search(len(h.spans), func(i int) bool { return h.spans[i].base >= base })
		if i >= len(h.spans) || h.spans[i].base != base {
			return fmt.Errorf("pointer to offset %d, not a copied object start", base)
		}
		if h.spans[i].size != total {
			return fmt.Errorf("pointer to object at offset %d copied with %d words, traced as %d", base, h.spans[i].size, total)
		}
	}
	return nil
}
