// Command tfbench regenerates the experiment tables (E1–E16; see
// EXPERIMENTS.md). With arguments, it runs only the named experiments.
//
//	tfbench              # all experiments
//	tfbench e1 e4        # selected experiments
//	tfbench -repeats 5 e2
//	tfbench telemetry    # per-collection GC telemetry over the task corpus
//	tfbench -json telemetry
//	tfbench -bench-json BENCH_PR3.json   # machine-readable benchmark snapshot
//	tfbench -scenario testdata/scenarios/          # declarative scenario matrix
//	tfbench -scenario run.tfs -json                # ... as a tagfree-bench/v1 snapshot
//	tfbench -scenario run.tfs -bench-json out.json # table + snapshot file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tagfree/internal/experiments"
	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/scenario"
	"tagfree/internal/workloads"
)

func main() {
	repeats := flag.Int("repeats", 3, "timing repetitions (best-of)")
	par := flag.Int("par", 1, "parallel collection workers for the telemetry report")
	asJSON := flag.Bool("json", false, "emit the telemetry report as JSON instead of tables")
	verifyHeap := flag.Bool("verify-heap", false, "verify heap invariants after every collection (telemetry report)")
	torture := flag.Bool("gc-torture", false, "collect before every allocation (telemetry report)")
	nursery := flag.Int("gc-nursery", 0, "generational nursery size in words per young half (telemetry report)")
	tlab := flag.Int("tlab", 0, "per-task allocation buffer chunk in words (telemetry report)")
	gcConc := flag.Bool("gc-concurrent", false, "mostly-concurrent marking on the mark/sweep rows (telemetry report)")
	shards := flag.Int("shards", 0, "heap shards with independent minor collections (telemetry report; needs -gc-nursery)")
	heapLive := flag.Bool("gc-heap-liveness", false, "liveness-guided tracing: prune provably dead element fields (telemetry report)")
	benchJSON := flag.String("bench-json", "", "write the benchmark snapshot (schema tagfree-bench/v1) to this file and exit; \"-\" for stdout")
	scenarioPath := flag.String("scenario", "", "run the scenario matrix from a .tfs file or a directory of .tfs files")
	flag.Parse()

	if *scenarioPath != "" {
		runScenarioMatrix(*scenarioPath, *asJSON, *benchJSON)
		return
	}

	if *benchJSON != "" {
		writeBenchSnapshot(*benchJSON, *repeats)
		return
	}

	runners := map[string]func() *experiments.Table{
		"e1":  experiments.E1HeapSpace,
		"e2":  func() *experiments.Table { return experiments.E2MutatorTags(*repeats) },
		"e3":  experiments.E3Liveness,
		"e4":  func() *experiments.Table { return experiments.E4SpaceTime(*repeats) },
		"e5":  experiments.E5GCWordElision,
		"e6":  experiments.E6PolyWalk,
		"e7":  experiments.E7Tasking,
		"e8":  experiments.E8RuntimeReps,
		"e9":  func() *experiments.Table { return experiments.E9MarkSweep(*repeats) },
		"e10": experiments.E10FastPath,
		"e11": experiments.E11Generational,
		"e12": experiments.E12AllocContention,
		"e13": experiments.E13ScenarioMatrix,
		"e14": experiments.E14Overload,
		"e15": func() *experiments.Table { return experiments.E15ConcurrentMark(*repeats) },
		"e16": experiments.E16ShardedMinors,
		"e17": experiments.E17HeapLiveness,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17"}

	selected := flag.Args()
	if len(selected) == 0 {
		selected = order
	}
	for _, name := range selected {
		if strings.EqualFold(name, "telemetry") {
			telemetryReport(*par, *asJSON, *verifyHeap, *torture, *nursery, *tlab, *gcConc, *shards, *heapLive)
			continue
		}
		r, ok := runners[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s, telemetry)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(r().Render())
	}
}

// runScenarioMatrix loads .tfs scenarios from a file or directory,
// compiles them against the tasking corpus, executes every cell and emits
// the comparative report: the aligned table by default, the
// tagfree-bench/v1 snapshot on stdout with -json, and additionally to a
// file when -bench-json names one. On a directory, every failing file is
// reported (not just the first) and the scenarios that did load still
// compile and run; the exit status turns nonzero only after the rest of
// the matrix has been emitted.
func runScenarioMatrix(path string, asJSON bool, benchJSON string) {
	scs, loadErrs := scenario.LoadPathAll(path)
	for _, err := range loadErrs {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
	}
	if len(scs) == 0 {
		os.Exit(2)
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	snap := scenario.RunMatrix(cells)
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if asJSON {
		os.Stdout.Write(js)
	} else {
		fmt.Print(snap.Table())
	}
	if benchJSON != "" && benchJSON != "-" {
		if err := os.WriteFile(benchJSON, js, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d cells, schema %s)\n", benchJSON, len(snap.Runs), snap.Schema)
	}
	if len(loadErrs) > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d file(s) failed to load\n", len(loadErrs))
		os.Exit(2)
	}
}

// writeBenchSnapshot regenerates the machine-readable benchmark snapshot
// (experiments.Bench) and writes it to path — the file committed as
// BENCH_PR<n>.json to make pause behavior comparable across the
// repository's history. See EXPERIMENTS.md for the schema.
func writeBenchSnapshot(path string, repeats int) {
	snap := experiments.Bench(repeats)
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if path == "-" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs, schema %s)\n", path, len(snap.Runs), snap.Schema)
}

// telemetryReport runs the multi-task workload corpus under the compiled
// strategy in both heap disciplines and emits each run's per-collection
// telemetry — the table form for reading, the JSON form for tooling.
// verify and torture thread the robustness knobs through, turning the
// report into a GC stress run over the whole corpus; nursery > 0 runs it
// generationally (tier2-nursery combines all three under -race); tlab > 0
// gives each task a private allocation buffer of that many words and grows
// the refill/fast/shared/waste columns plus the cumulative tlab line.
func telemetryReport(par int, asJSON, verify, torture bool, nursery, tlab int, conc bool, shards int, heapLive bool) {
	for _, w := range workloads.Tasking {
		for _, ms := range []bool{false, true} {
			opts := pipeline.Options{
				Strategy:       gc.StratCompiled,
				HeapWords:      w.HeapWords,
				MarkSweep:      ms,
				Parallelism:    par,
				VerifyHeap:     verify,
				Torture:        torture,
				NurseryWords:   nursery,
				TLABWords:      tlab,
				GCHeapLiveness: heapLive,
			}
			if shards > 1 && nursery > 0 {
				opts.Shards = shards
			}
			if conc && ms && nursery == 0 && par <= 1 {
				// -gc-concurrent applies only where the incremental marker
				// exists: the sequential, non-nursery mark/sweep rows.
				opts.GCConcurrent = true
			}
			res, err := pipeline.RunTasks(w.Source, w.Entries, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry %s: %v\n", w.Name, err)
				os.Exit(1)
			}
			if asJSON {
				js, err := pipeline.TelemetryJSON(res.Telemetry, pipeline.TelemetryOptions{})
				if err != nil {
					fmt.Fprintf(os.Stderr, "telemetry %s: %v\n", w.Name, err)
					os.Exit(1)
				}
				fmt.Println(string(js))
				continue
			}
			fmt.Printf("%s (%d tasks)\n", w.Name, len(w.Entries))
			fmt.Println(pipeline.TelemetryTable(res.Telemetry, pipeline.TelemetryOptions{Tasks: true}))
		}
	}
}
