// Command tfbench regenerates the experiment tables (E1–E8; see
// EXPERIMENTS.md). With arguments, it runs only the named experiments.
//
//	tfbench            # all experiments
//	tfbench e1 e4      # selected experiments
//	tfbench -repeats 5 e2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tagfree/internal/experiments"
)

func main() {
	repeats := flag.Int("repeats", 3, "timing repetitions (best-of)")
	flag.Parse()

	runners := map[string]func() *experiments.Table{
		"e1": experiments.E1HeapSpace,
		"e2": func() *experiments.Table { return experiments.E2MutatorTags(*repeats) },
		"e3": experiments.E3Liveness,
		"e4": func() *experiments.Table { return experiments.E4SpaceTime(*repeats) },
		"e5": experiments.E5GCWordElision,
		"e6": experiments.E6PolyWalk,
		"e7": experiments.E7Tasking,
		"e8": experiments.E8RuntimeReps,
		"e9": func() *experiments.Table { return experiments.E9MarkSweep(*repeats) },
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}

	selected := flag.Args()
	if len(selected) == 0 {
		selected = order
	}
	for _, name := range selected {
		r, ok := runners[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(r().Render())
	}
}
