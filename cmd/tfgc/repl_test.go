package main

import (
	"strings"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
)

func runREPL(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	repl(strings.NewReader(script), &out, pipeline.Options{
		Strategy:  gc.StratCompiled,
		HeapWords: 4096,
	})
	return out.String()
}

func TestREPLEvaluatesExpressions(t *testing.T) {
	out := runREPL(t, "1 + 2\n:quit\n")
	if !strings.Contains(out, "- : int = 3") {
		t.Fatalf("output: %s", out)
	}
}

func TestREPLAccumulatesDeclarations(t *testing.T) {
	out := runREPL(t, `let double x = x * 2
double 21
:quit
`)
	if !strings.Contains(out, "- : int = 42") {
		t.Fatalf("output: %s", out)
	}
}

func TestREPLRejectsBadDeclarationWithoutPoisoning(t *testing.T) {
	out := runREPL(t, `let bad = 1 + true
let good = 10
good
:quit
`)
	if !strings.Contains(out, "error:") {
		t.Fatalf("bad declaration not reported: %s", out)
	}
	if !strings.Contains(out, "- : int = 10") {
		t.Fatalf("session poisoned by rejected declaration: %s", out)
	}
}

func TestREPLTypeCommand(t *testing.T) {
	out := runREPL(t, ":type fun x -> (x, x)\n:quit\n")
	if !strings.Contains(out, "- : 'a -> 'a * 'a") {
		t.Fatalf("output: %s", out)
	}
}

func TestREPLReset(t *testing.T) {
	out := runREPL(t, `let x = 5
:reset
x
:quit
`)
	if !strings.Contains(out, "unbound variable x") {
		t.Fatalf("reset did not clear declarations: %s", out)
	}
}

func TestREPLPrintsProgramOutput(t *testing.T) {
	out := runREPL(t, "print_string \"side\"; 0\n:quit\n")
	if !strings.Contains(out, "side") {
		t.Fatalf("program output missing: %s", out)
	}
}

func TestREPLWarnsOnInexhaustiveDecl(t *testing.T) {
	out := runREPL(t, "let head xs = match xs with | x :: _ -> x\n:quit\n")
	if !strings.Contains(out, "not exhaustive") {
		t.Fatalf("warning missing: %s", out)
	}
}
