package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProg drops MinML source in a temp dir and returns its path.
func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.ml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const churnSrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + sum (upto 20))
let main () = work 30 0
`

// run invokes the cli and returns its stdout.
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := cli(args, &out)
	return out.String(), err
}

func TestRunTortureVerifySmoke(t *testing.T) {
	path := writeProg(t, churnSrc)
	for _, gcName := range []string{"compiled", "interp", "appel", "tagged"} {
		for _, extra := range [][]string{nil, {"-marksweep"}} {
			if gcName == "tagged" && extra != nil {
				continue // mark/sweep is tag-free only
			}
			args := append([]string{"run", "-gc", gcName, "-heap", "2048",
				"-verify-heap", "-gc-torture", "-gc-stats"}, extra...)
			args = append(args, path)
			out, err := run(t, args...)
			if err != nil {
				t.Fatalf("%v: %v", args, err)
			}
			if !strings.Contains(out, "=> 6300") {
				t.Fatalf("%v: missing result, got:\n%s", args, out)
			}
			if !strings.Contains(out, "torture-collections=") {
				t.Fatalf("%v: telemetry table lacks resilience counters:\n%s", args, out)
			}
		}
	}
}

func TestRunInjectedFailureRecovers(t *testing.T) {
	path := writeProg(t, churnSrc)
	out, err := run(t, "run", "-fail-every", "25", "-verify-heap", "-gc-stats", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=> 6300") {
		t.Fatalf("missing result:\n%s", out)
	}
	if !strings.Contains(out, "injected-ooms=") || !strings.Contains(out, "emergency-collections=") {
		t.Fatalf("telemetry table lacks injection counters:\n%s", out)
	}
}

const greedySrc = `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec len xs = match xs with | [] -> 0 | _ :: r -> len r + 1
let greedy () = len (upto 6000)
let modest () = len (upto 20)
`

func TestTasksFaultIsolation(t *testing.T) {
	path := writeProg(t, greedySrc)
	out, err := run(t, "tasks", "-entry", "greedy,modest", "-heap", "1024",
		"-verify-heap", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[greedy] faulted:") {
		t.Fatalf("greedy task did not fault:\n%s", out)
	}
	if !strings.Contains(out, "[modest] => 20") {
		t.Fatalf("sibling task did not survive:\n%s", out)
	}
}

func TestTasksGrowthRescuesGreedyTask(t *testing.T) {
	path := writeProg(t, greedySrc)
	out, err := run(t, "tasks", "-entry", "greedy,modest", "-heap", "1024",
		"-heap-grow", "2", "-heap-max", "65536", "-verify-heap", "-gc-stats", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[greedy] => 6000") {
		t.Fatalf("growth did not rescue greedy task:\n%s", out)
	}
	if !strings.Contains(out, "heap-growths=") {
		t.Fatalf("telemetry table lacks growth counter:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate", "x.ml"},
		{"tasks", writeProg(t, greedySrc)},
	} {
		if _, err := run(t, args...); err == nil {
			t.Fatalf("cli(%v) succeeded, want usage error", args)
		} else if _, ok := err.(*usageError); !ok {
			t.Fatalf("cli(%v): %v is not a usage error", args, err)
		}
	}
}
