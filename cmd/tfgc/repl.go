package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tagfree/internal/pipeline"
)

// repl is an interactive read-eval-print loop: declarations accumulate,
// expressions evaluate immediately (each evaluation compiles the
// accumulated program plus a synthesized main and runs it from scratch —
// the simulator is fast enough that this is instantaneous).
func repl(in io.Reader, out io.Writer, opts pipeline.Options) {
	fmt.Fprintln(out, "MinML REPL — tag-free GC simulator")
	fmt.Fprintln(out, "declarations accumulate; expressions evaluate; :help for commands")

	var decls []string
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	prompt := func() { fmt.Fprint(out, "minml> ") }
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Fprintln(out, `  <expr>          evaluate an expression
  let ... / type ...   add a declaration
  :type <expr>    show an expression's type
  :list           show accumulated declarations
  :reset          drop all declarations
  :quit           leave`)
		case line == ":reset":
			decls = nil
			fmt.Fprintln(out, "cleared")
		case line == ":list":
			for _, d := range decls {
				fmt.Fprintln(out, d)
			}
		case strings.HasPrefix(line, ":type "):
			expr := strings.TrimPrefix(line, ":type ")
			src := strings.Join(decls, "\n") + "\nlet main () = " + expr + "\n"
			if res, err := pipeline.Eval(src, withSteps(opts)); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintf(out, "- : %s\n", res.Type)
			}
		case strings.HasPrefix(line, "let ") || strings.HasPrefix(line, "type ") ||
			strings.HasPrefix(line, "let\t"):
			// Tentatively add the declaration; validate by type checking
			// the accumulated program (no main needed for checking).
			candidate := append(append([]string{}, decls...), line)
			src := strings.Join(candidate, "\n") + "\n"
			if _, _, err := pipeline.Frontend(src); err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			if ws, err := pipeline.Warnings(src); err == nil {
				for _, w := range ws {
					fmt.Fprintln(out, w)
				}
			}
			decls = candidate
			fmt.Fprintln(out, "ok")
		default:
			src := strings.Join(decls, "\n") + "\nlet main () = " + line + "\n"
			res, err := pipeline.Eval(src, withSteps(opts))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			if res.Result.Output != "" {
				fmt.Fprint(out, res.Result.Output)
				if !strings.HasSuffix(res.Result.Output, "\n") {
					fmt.Fprintln(out)
				}
			}
			fmt.Fprintf(out, "- : %s = %s\n", res.Type, res.Value)
		}
		prompt()
	}
}

func withSteps(opts pipeline.Options) pipeline.Options {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	return opts
}
