package main

import (
	"encoding/json"
	"strings"
	"testing"

	"tagfree/internal/serve"
)

// The tfserve CLI smoke suite drives cli() directly, the way the tfgc
// tests drive theirs: the closed-loop default, an open-loop overload run,
// the JSON snapshot form, and flag validation.

func TestCLIClosedLoop(t *testing.T) {
	var out strings.Builder
	if err := cli(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"serve: workload=taskserve", "closed-loop",
		"issued=4 completed=4", "latency(steps):"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCLIOpenLoopJSON(t *testing.T) {
	var out strings.Builder
	args := []string{"-period", "3000", "-requests", "40", "-seed", "7",
		"-queue", "4", "-inflight", "2", "-retries", "2",
		"-mix", "req_tiny:3,req_small:1", "-json"}
	if err := cli(args, &out); err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Schema != serve.SnapshotSchema || len(snap.Runs) != 1 {
		t.Fatalf("snapshot shape: schema=%q runs=%d", snap.Schema, len(snap.Runs))
	}
	r := snap.Runs[0]
	s := r.Stats
	if s.Requests != 40 || s.Completed+s.Dropped+s.Canceled+s.Faulted != s.Requests {
		t.Fatalf("ledger does not balance: %+v", s)
	}
	if r.Kind != "serve" || r.Period != 3000 {
		t.Fatalf("report misdescribes the run: %+v", r)
	}
}

func TestCLIScenario(t *testing.T) {
	var out strings.Builder
	if err := cli([]string{"-scenario", "../../testdata/scenarios/overload-torture.tfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "overload-torture") ||
		!strings.Contains(out.String(), "serve: done=") {
		t.Errorf("scenario table missing serve row:\n%s", out.String())
	}
}

func TestCLIBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nosuch"},
		{"-gc", "wizard"},
		{"-mix", "req_tiny"},          // missing weight
		{"-mix", "req_tiny:0"},        // non-positive weight
		{"-period", "10"},             // open loop without -requests
		{"-mix", "nope:1", "-period", "10", "-requests", "1"}, // unknown entry
		{"stray-arg"},
	} {
		var out strings.Builder
		if err := cli(args, &out); err == nil {
			t.Errorf("args %v not rejected", args)
		}
	}
}
