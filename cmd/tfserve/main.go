// Command tfserve drives the overload-resilience serving harness: an
// open-loop request generator (arrival rate, burst, heavy-tail service
// mix) over a task workload, with bounded admission, load shedding,
// client retry, and the degradation ladder (shed arrivals → forced
// major/tenure-all collections → deadline cancellation) standing between
// overload and global failure.
//
//	tfserve                                  # closed-loop taskserve run (tfbench twin)
//	tfserve -period 3000 -requests 120       # open-loop arrivals at one request per 3000 steps
//	tfserve -period 3000 -requests 120 -mix req_tiny:6,req_small:3,req_medium:2,req_heavy:1
//	tfserve -period 1500 -burst 2 -requests 60 -queue 8 -inflight 4 -shed-heap 85 \
//	        -retries 3 -deadline 400000 -budget-steps 2000000
//	tfserve -json ...                        # tagfree-bench/v1 snapshot on stdout
//	tfserve -bench-json out.json ...         # table + snapshot file
//	tfserve -scenario testdata/scenarios/overload.tfs   # declarative overload matrix
//
// Flags mirror tfgc/tfbench: the collector knobs (-gc, -heap, -marksweep,
// -par, -gc-nursery, -gc-promote, -tlab), the robustness knobs
// (-verify-heap, -gc-torture, -fail-alloc, -fail-every, -fail-refills,
// -heap-grow, -heap-max), and -gc-stats for the per-collection telemetry
// table. Budgets (-budget-steps, -budget-alloc) terminate any task that
// exceeds its per-request quota with a BudgetExceeded fault.
//
// All arrival scheduling and latency accounting is in virtual steps, so
// reported p50/p99/p999 latencies are deterministic for a given -seed;
// wall time appears only in the throughput line (EXPERIMENTS.md, E14).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tagfree/internal/gc"
	"tagfree/internal/pipeline"
	"tagfree/internal/scenario"
	"tagfree/internal/serve"
	"tagfree/internal/workloads"
)

// usageError distinguishes bad invocations (exit 2) from runtime failures
// (exit 1).
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	if err := cli(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tfserve:", err)
		if _, ok := err.(*usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// cli runs one tfserve invocation, writing the report to stdout. It is
// the whole command minus process concerns (exit codes, stderr), so tests
// can drive it directly.
func cli(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tfserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workload := fs.String("workload", "taskserve", "task workload whose entries are the service classes")
	gcName := fs.String("gc", "compiled", "collector: compiled, interp, appel, tagged")
	heap := fs.Int("heap", 0, "semispace size in words (0 = the workload's recommendation)")
	markSweep := fs.Bool("marksweep", false, "mark/sweep heap discipline instead of semispace copying")
	par := fs.Int("par", 1, "parallel collection workers (1 = sequential)")
	nursery := fs.Int("gc-nursery", 0, "generational nursery size in words per young half (0 = off)")
	promote := fs.Int("gc-promote", 0, "nursery survival count before promotion (0 = default of 2)")
	tlab := fs.Int("tlab", 0, "per-task allocation buffer chunk in words (0 = off)")
	gcConc := fs.Bool("gc-concurrent", false, "mostly-concurrent marking (-marksweep, no nursery)")
	concPct := fs.Int("gc-conc-trigger", 0, "heap-occupancy percent that starts a concurrent cycle (0 = 75)")
	concBudget := fs.Int("gc-conc-budget", 0, "words marked per concurrent slice (0 = default)")
	concSlices := fs.Int("gc-conc-maxslices", 0, "slice watchdog before a cycle aborts to stop-the-world (0 = derived)")
	shards := fs.Int("shards", 0, "partition tasks and nursery into N heap shards with independent minor collections (needs -gc-nursery)")
	heapLive := fs.Bool("gc-heap-liveness", false, "liveness-guided tracing: prune provably dead element fields (compiled strategy)")
	poison := fs.Bool("poison-pruned", false, "fault any load of a pruned field (debug mode for -gc-heap-liveness)")
	verifyHeap := fs.Bool("verify-heap", false, "verify heap invariants after every collection")
	torture := fs.Bool("gc-torture", false, "collect before every allocation")
	failNth := fs.Int64("fail-alloc", 0, "inject one allocation failure at the Nth allocation")
	failEvery := fs.Int64("fail-every", 0, "inject an allocation failure every Kth allocation")
	failRefills := fs.Bool("fail-refills", false, "restrict -fail-alloc/-fail-every to TLAB refill carves")
	heapGrow := fs.Float64("heap-grow", 0, "heap growth factor when collection cannot satisfy an allocation (>1 enables)")
	heapMax := fs.Int("heap-max", 0, "hard ceiling for heap growth in semispace words (0 = unbounded)")
	budgetSteps := fs.Int64("budget-steps", 0, "per-task step budget; exceeding it faults the task (0 = off)")
	budgetAlloc := fs.Int64("budget-alloc", 0, "per-task allocation-word budget (0 = off)")
	period := fs.Int64("period", 0, "inter-arrival period in steps (0 = closed-loop corpus run)")
	burst := fs.Int("burst", 1, "requests arriving together each period")
	requests := fs.Int("requests", 0, "total requests to issue (open loop)")
	seed := fs.Int64("seed", 1, "PRNG seed for mix sampling and retry jitter")
	queue := fs.Int("queue", 0, "admission queue depth (0 = default 16)")
	inflight := fs.Int("inflight", 0, "max concurrently running requests (0 = default 8)")
	shedHeap := fs.Int("shed-heap", 0, "shed arrivals at this heap occupancy percentage (0 = off)")
	retries := fs.Int("retries", 0, "max client retries after a shed")
	backoff := fs.Int64("backoff", 0, "initial retry backoff in steps (0 = period)")
	backoffCap := fs.Int64("backoff-cap", 0, "retry backoff ceiling in steps (0 = 64x backoff)")
	deadline := fs.Int64("deadline", 0, "cancel admitted requests running longer than this many steps (0 = off)")
	mixSpec := fs.String("mix", "", "weighted service mix, entry:weight[,entry:weight...] (empty = uniform)")
	gcStats := fs.Bool("gc-stats", false, "print the per-collection GC telemetry table after the report")
	asJSON := fs.Bool("json", false, "emit the tagfree-bench/v1 snapshot on stdout instead of the table")
	benchJSON := fs.String("bench-json", "", "additionally write the snapshot to this file")
	scenarioPath := fs.String("scenario", "", "run the scenario matrix from a .tfs file or directory instead of flags")
	if err := fs.Parse(args); err != nil {
		return &usageError{err.Error()}
	}
	if fs.NArg() != 0 {
		return &usageError{fmt.Sprintf("unexpected argument %q", fs.Arg(0))}
	}

	if *scenarioPath != "" {
		return runScenario(*scenarioPath, *asJSON, *benchJSON, stdout)
	}

	w, ok := workloads.TaskByName(*workload)
	if !ok {
		return &usageError{fmt.Sprintf("unknown task workload %q", *workload)}
	}
	strat, err := parseStrategy(*gcName)
	if err != nil {
		return err
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	heapWords := *heap
	if heapWords == 0 {
		heapWords = w.HeapWords
	}
	cfg := serve.Config{
		Workload: w,
		Mix:      mix,
		Opts: pipeline.Options{
			Strategy:         strat,
			HeapWords:        heapWords,
			MarkSweep:        *markSweep,
			Parallelism:      *par,
			NurseryWords:     *nursery,
			PromoteAfter:     *promote,
			TLABWords:        *tlab,
			VerifyHeap:       *verifyHeap,
			Torture:          *torture,
			FailAllocNth:     *failNth,
			FailAllocEvery:   *failEvery,
			FailRefillsOnly:  *failRefills,
			GrowFactor:       *heapGrow,
			MaxHeapWords:     *heapMax,
			BudgetSteps:      *budgetSteps,
			BudgetAllocWords: *budgetAlloc,
			GCConcurrent:     *gcConc,
			ConcTriggerPct:   *concPct,
			ConcMarkBudget:   *concBudget,
			ConcMaxSlices:    *concSlices,
			Shards:           *shards,
			GCHeapLiveness:   *heapLive,
			PoisonPruned:     *poison,
		},
		Period:      *period,
		Burst:       *burst,
		Requests:    *requests,
		Seed:        *seed,
		QueueDepth:  *queue,
		MaxInflight: *inflight,
		ShedHeapPct: *shedHeap,
		MaxRetries:  *retries,
		Backoff:     *backoff,
		BackoffCap:  *backoffCap,
		Deadline:    *deadline,
	}
	res, err := serve.Run(cfg)
	if err != nil {
		return err
	}
	rep := serve.NewReport(w.Name, cfg, res)
	snap := serve.Snapshot{Schema: serve.SnapshotSchema, Runs: []serve.Report{rep}}
	if err := emit(stdout, snap, rep.Table(), *asJSON, *benchJSON); err != nil {
		return err
	}
	if *gcStats {
		fmt.Fprint(stdout, pipeline.TelemetryTable(&res.Group.Col.Telem, pipeline.TelemetryOptions{Tasks: true}))
	}
	return nil
}

// runScenario compiles a .tfs file (or directory) and runs the matrix —
// the declarative twin of the flag form; tfbench -scenario emits the same
// report. Files that fail to load are all reported before giving up.
func runScenario(path string, asJSON bool, benchJSON string, stdout io.Writer) error {
	scs, errs := scenario.LoadPathAll(path)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "tfserve: scenario:", err)
	}
	cells, err := scenario.Compile(scs)
	if err != nil {
		return err
	}
	snap := scenario.RunMatrix(cells)
	if err := emit(stdout, snap, snap.Table(), asJSON, benchJSON); err != nil {
		return err
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d scenario file(s) failed to load", len(errs))
	}
	return nil
}

// emit renders the report: the table by default, the snapshot JSON on
// stdout with -json, and additionally to a file when -bench-json names one.
func emit(stdout io.Writer, snap any, table string, asJSON bool, benchJSON string) error {
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if asJSON {
		stdout.Write(js)
	} else {
		fmt.Fprint(stdout, table)
	}
	if benchJSON != "" && benchJSON != "-" {
		if err := os.WriteFile(benchJSON, js, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", benchJSON)
	}
	return nil
}

// parseMix parses the -mix spec: entry:weight pairs, comma-separated.
func parseMix(spec string) ([]serve.MixEntry, error) {
	if spec == "" {
		return nil, nil
	}
	var mix []serve.MixEntry
	for _, part := range strings.Split(spec, ",") {
		entry, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, &usageError{fmt.Sprintf("mix: %q is not entry:weight", part)}
		}
		n, err := strconv.Atoi(weight)
		if err != nil || n < 1 {
			return nil, &usageError{fmt.Sprintf("mix: bad weight in %q", part)}
		}
		mix = append(mix, serve.MixEntry{Entry: entry, Weight: n})
	}
	return mix, nil
}

func parseStrategy(name string) (gc.Strategy, error) {
	switch name {
	case "compiled":
		return gc.StratCompiled, nil
	case "interp":
		return gc.StratInterp, nil
	case "appel":
		return gc.StratAppel, nil
	case "tagged":
		return gc.StratTagged, nil
	}
	return 0, &usageError{fmt.Sprintf("unknown collector %q (want compiled, interp, appel or tagged)", name)}
}
