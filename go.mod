module tagfree

go 1.22
