// Package tagfree reproduces Benjamin Goldberg's "Tag-Free Garbage
// Collection for Strongly Typed Programming Languages" (PLDI 1991).
//
// The repository contains a complete compiler and runtime for MinML, a
// small ML-like language, built so that garbage collection runs without
// any run-time type tags: the compiler emits per-call-site frame GC
// routines addressed through gc_words embedded next to call instructions,
// polymorphic frames receive type_gc_routines from their callers during
// an oldest-to-newest stack walk, and three comparison collectors (the
// interpreted-descriptor method, Appel's per-procedure descriptors, and a
// classical tagged collector) run over the same programs.
//
// Entry points:
//
//   - internal/pipeline: compile and run MinML source under any collector
//   - cmd/tfgc: command-line compiler/runner/disassembler
//   - cmd/tfbench: regenerates the experiment tables of EXPERIMENTS.md
//   - bench_test.go: Go benchmarks mirroring the experiments
//
// See README.md for a tour and DESIGN.md for the system inventory.
package tagfree
