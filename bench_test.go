package tagfree_test

// Go benchmarks mirroring the experiment tables (EXPERIMENTS.md). Each
// BenchmarkE* target regenerates the measurements behind one experiment:
//
//	E1 heap space        — allocation volume per representation
//	E2 mutator tags      — end-to-end run time, tagged vs tag-free
//	E3 liveness          — copied words with and without live maps
//	E4 space/time        — pause time per strategy (metadata reported)
//	E5 gc_word elision   — compile-time analysis (reported as metrics)
//	E6 polymorphic walk  — collection work vs polymorphic stack depth
//	E7 tasking           — multi-task suspension protocol
//	E8 runtime reps      — phantom-closure type representation cost
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"tagfree/internal/gc"
	"tagfree/internal/heap"
	"tagfree/internal/pipeline"
	"tagfree/internal/tasking"
	"tagfree/internal/workloads"
)

// compileOnce caches compiled programs per workload and strategy.
func runWorkload(b *testing.B, w workloads.Workload, strat gc.Strategy, opts pipeline.Options) *pipeline.Result {
	b.Helper()
	opts.Strategy = strat
	if opts.HeapWords == 0 {
		opts.HeapWords = w.HeapWords
	}
	opts.MaxSteps = 1 << 40
	res, err := pipeline.Run(w.Source, opts)
	if err != nil {
		b.Fatalf("%s [%v]: %v", w.Name, strat, err)
	}
	if res.Value != w.Expect {
		b.Fatalf("%s [%v]: result %d, want %d", w.Name, strat, res.Value, w.Expect)
	}
	return res
}

// BenchmarkE1HeapSpace reports allocation volume per representation; the
// interesting numbers are the reported metrics, the time is incidental.
func BenchmarkE1HeapSpace(b *testing.B) {
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
			b.Run(fmt.Sprintf("%s/%v", w.Name, strat), func(b *testing.B) {
				var words, peak int64
				for i := 0; i < b.N; i++ {
					res := runWorkload(b, w, strat, pipeline.Options{})
					words = res.HeapStats.WordsAllocated
					peak = res.HeapStats.PeakLive
				}
				b.ReportMetric(float64(words), "alloc-words")
				b.ReportMetric(float64(peak), "peak-live-words")
			})
		}
	}
}

// BenchmarkE2MutatorTags times the arithmetic-only workloads end to end
// under both representations.
func BenchmarkE2MutatorTags(b *testing.B) {
	for _, w := range workloads.All {
		if w.AllocHeavy {
			continue
		}
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratTagged} {
			b.Run(fmt.Sprintf("%s/%v", w.Name, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runWorkload(b, w, strat, pipeline.Options{})
				}
			})
		}
	}
}

// BenchmarkE3Liveness reports copied words with precise live maps against
// widened all-slot maps.
func BenchmarkE3Liveness(b *testing.B) {
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"live-maps", false}, {"all-slots", true}} {
			b.Run(fmt.Sprintf("%s/%s", w.Name, mode.name), func(b *testing.B) {
				var copied int64
				for i := 0; i < b.N; i++ {
					res := runWorkload(b, w, gc.StratCompiled,
						pipeline.Options{DisableLiveness: mode.disable})
					copied = res.HeapStats.WordsCopied
				}
				b.ReportMetric(float64(copied), "copied-words")
			})
		}
	}
}

// BenchmarkE4SpaceTime times whole runs per strategy and reports the GC
// pause share and metadata footprint — the §2.4 trade-off.
func BenchmarkE4SpaceTime(b *testing.B) {
	for _, w := range workloads.All {
		if !w.AllocHeavy {
			continue
		}
		for _, strat := range pipeline.Strategies {
			b.Run(fmt.Sprintf("%s/%v", w.Name, strat), func(b *testing.B) {
				var pause, colls, meta int64
				for i := 0; i < b.N; i++ {
					res := runWorkload(b, w, strat, pipeline.Options{})
					pause = res.GCStats.PauseNS
					colls = res.GCStats.Collections
					meta = res.MetadataWords
				}
				if colls > 0 {
					b.ReportMetric(float64(pause)/float64(colls), "pause-ns/gc")
				}
				b.ReportMetric(float64(meta), "metadata-words")
			})
		}
	}
}

// BenchmarkE5GCAnal times compilation including the §5.1 analysis and
// reports elision counts.
func BenchmarkE5GCAnal(b *testing.B) {
	for _, w := range workloads.All {
		b.Run(w.Name, func(b *testing.B) {
			var elided, direct int
			for i := 0; i < b.N; i++ {
				_, anal, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled})
				if err != nil {
					b.Fatal(err)
				}
				elided = anal.Stats.ElidedSites
				direct = anal.Stats.DirectCallSites
			}
			b.ReportMetric(float64(elided), "elided-sites")
			b.ReportMetric(float64(direct), "direct-sites")
		})
	}
}

// BenchmarkE6PolyWalk measures collection work against polymorphic stack
// depth for the incremental walk vs Appel's chain re-walk.
func BenchmarkE6PolyWalk(b *testing.B) {
	for _, depth := range []int{100, 200, 400} {
		src := fmt.Sprintf(`
let probe x = (let _ = [x; x] in 1)
let rec pdepth x acc n =
  if n = 0 then acc
  else probe x + pdepth x acc (n - 1)
let main () = pdepth (1, true) 0 %d
`, depth)
		for _, strat := range []gc.Strategy{gc.StratCompiled, gc.StratAppel} {
			b.Run(fmt.Sprintf("depth%d/%v", depth, strat), func(b *testing.B) {
				var work int64
				for i := 0; i < b.N; i++ {
					res, err := pipeline.Run(src, pipeline.Options{
						Strategy:  strat,
						HeapWords: depth * 3,
						MaxSteps:  1 << 40,
					})
					if err != nil {
						b.Fatal(err)
					}
					if strat == gc.StratAppel {
						work = res.GCStats.ChainSteps
					} else {
						work = res.GCStats.FramesTraced
					}
				}
				b.ReportMetric(float64(work), "walk-steps")
			})
		}
	}
}

// BenchmarkE7Tasking measures the multi-task suspension protocol.
func BenchmarkE7Tasking(b *testing.B) {
	src := `
let rec upto n = if n = 0 then [] else n :: upto (n - 1)
let rec sum xs = match xs with | [] -> 0 | x :: r -> x + sum r
let round () = sum (upto 25)
let rec work rounds acc =
  if rounds = 0 then acc
  else work (rounds - 1) (acc + round ())
let t0 () = work 40 0
let t1 () = work 40 0
let t2 () = work 40 0
let t3 () = work 40 0
`
	for _, n := range []int{1, 2, 4} {
		entries := make([]string, n)
		for i := range entries {
			entries[i] = fmt.Sprintf("t%d", i)
		}
		b.Run(fmt.Sprintf("tasks%d", n), func(b *testing.B) {
			var maxLat int64
			for i := 0; i < b.N; i++ {
				res, err := pipeline.RunTasks(src, entries, pipeline.Options{
					Strategy:  gc.StratCompiled,
					HeapWords: 2048,
				})
				if err != nil {
					b.Fatal(err)
				}
				maxLat = 0
				for _, l := range res.Stats.SuspendLatency {
					if l > maxLat {
						maxLat = l
					}
				}
			}
			b.ReportMetric(float64(maxLat), "max-suspend-latency")
		})
	}
}

// BenchmarkE8RuntimeReps times the phantom-closure workload (the one
// program needing runtime type representations) against a rep-free closure
// workload of similar allocation behavior.
func BenchmarkE8RuntimeReps(b *testing.B) {
	names := []string{"thunks", "closures"}
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("missing workload %s", name)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runWorkload(b, w, gc.StratCompiled, pipeline.Options{})
			}
		})
	}
}

// BenchmarkCompile measures front-to-back compilation speed.
func BenchmarkCompile(b *testing.B) {
	for _, w := range workloads.All {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := pipeline.Build(w.Source, pipeline.Options{Strategy: gc.StratCompiled}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel collection benchmarks: Collect on a realistic mid-execution
// root set with 1, 2 and 4 workers. RunUntilCollection schedules the task
// group until a stop-the-world collection is due and hands back the roots
// without collecting; Collect may then run repeatedly on them (each
// collection leaves the stacks consistent for the next). On multi-core
// hardware the 4-worker rows should beat the sequential oracle; the
// parallel path guarantees bit-identical heaps either way, so this is a
// pure speedup knob.
// ---------------------------------------------------------------------------

// benchCollectGroup compiles a task workload and schedules it up to its
// first collection, returning the group and the captured root set.
func benchCollectGroup(b *testing.B, w workloads.TaskWorkload, strat gc.Strategy, ms bool) (*tasking.Group, []gc.TaskRoots) {
	b.Helper()
	prog, _, err := pipeline.Build(w.Source, pipeline.Options{
		Strategy:             strat,
		DisableGCWordElision: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]int, len(w.Entries))
	for i, name := range w.Entries {
		entries[i] = prog.FuncByName(name)
	}
	var g *tasking.Group
	if ms {
		g, err = tasking.NewGroupWith(prog, heap.NewMarkSweep(prog.Repr, 2*w.HeapWords), strat, entries)
	} else {
		g, err = tasking.NewGroup(prog, w.HeapWords, strat, entries)
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := g.RunInit(); err != nil {
		b.Fatal(err)
	}
	roots, pending, err := g.RunUntilCollection()
	if err != nil {
		b.Fatal(err)
	}
	if !pending {
		b.Fatalf("%s finished without collecting — not a GC benchmark", w.Name)
	}
	return g, roots
}

func benchParallelCollect(b *testing.B, strat gc.Strategy, ms bool) {
	kind := "copying"
	if ms {
		kind = "marksweep"
	}
	for _, w := range workloads.Tasking {
		for _, par := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%s/par=%d", w.Name, kind, par), func(b *testing.B) {
				g, roots := benchCollectGroup(b, w, strat, ms)
				g.Col.Parallelism = par
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g.Col.Collect(roots, g.Globals)
				}
			})
		}
	}
}

// BenchmarkParallelCollect measures the compiled strategy's collection
// pause against worker count, in both heap disciplines.
func BenchmarkParallelCollect(b *testing.B)          { benchParallelCollect(b, gc.StratCompiled, false) }
func BenchmarkParallelCollectMarkSweep(b *testing.B) { benchParallelCollect(b, gc.StratCompiled, true) }

// BenchmarkParallelCollectAppel isolates the strategy whose root
// resolution is the most expensive (the O(n²) chain re-walks): resolution
// parallelizes, so Appel mode gains the most from extra workers.
func BenchmarkParallelCollectAppel(b *testing.B) { benchParallelCollect(b, gc.StratAppel, false) }
